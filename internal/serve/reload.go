package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"

	"freshsource/internal/modelcache"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// ErrNotReloadable reports a reload request on a tenant that has no
// snapshot directory to reload from (it serves an in-process generated
// dataset, which has no on-disk successor).
var ErrNotReloadable = errors.New("serve: no snapshot directory configured; reload unavailable")

// ReloadInfo describes the outcome of a successful Reload.
type ReloadInfo struct {
	// Tenant names the world the reload acted on.
	Tenant string `json:"tenant"`
	// Generation is the tenant's serving generation after the reload
	// (unchanged when Swapped is false).
	Generation uint64 `json:"generation"`
	// Swapped reports whether a new generation was installed; false means
	// the staged snapshot's digest matched the serving one, so the warm
	// registry was kept.
	Swapped bool `json:"swapped"`
	// Dataset and Digest identify the serving snapshot after the reload.
	Dataset string `json:"dataset"`
	Digest  string `json:"digest"`
}

// Reload picks up a changed snapshot for the default tenant without
// restarting the daemon (the single-tenant surface; ReloadTenant addresses
// a named world).
func (s *Server) Reload(ctx context.Context) (ReloadInfo, error) {
	return s.reloadTenant(ctx, s.def)
}

// ReloadTenant is Reload for a named tenant ("" addresses the default).
func (s *Server) ReloadTenant(ctx context.Context, name string) (ReloadInfo, error) {
	t, err := s.Tenant(name)
	if err != nil {
		return ReloadInfo{}, err
	}
	return s.reloadTenant(ctx, t)
}

// reloadTenant picks up a changed snapshot for one tenant. The lifecycle is
// stage → validate → fit → swap, and it is atomic from the traffic's point
// of view:
//
//	stage     re-read the tenant's snapshot directory through snapio
//	          (nothing shared with the serving generation)
//	validate  structural checks plus the modelcache digest of the staged
//	          data; an unchanged digest ends the reload early, keeping the
//	          warm registry (Swapped=false)
//	fit       pre-fit the base models on a candidate registry (through the
//	          persistent model cache when configured), bounded by ctx
//	swap      atomically publish the candidate generation; in-flight
//	          requests finish on the generation they started with
//
// Any failure — unreadable or corrupt snapshot, fit error, fired ctx —
// rolls back: the candidate is discarded, the last-good generation keeps
// serving, and the error is reported to the caller only. Reloads are
// serialized per tenant (concurrent SIGHUP and /v1/reload triggers queue);
// reloads on different tenants proceed independently, and requests on other
// tenants are never perturbed.
//
// Counters: serve.reload.{attempts,success,unchanged,failures}; each
// tenant's serving generation id is its serve.tenant.<name>.generation
// gauge (mirrored by the legacy serve.reload.generation gauge for the
// default tenant) and is also reported by /healthz.
func (s *Server) reloadTenant(ctx context.Context, t *Tenant) (ReloadInfo, error) {
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()

	obs.Counter("serve.reload.attempts").Inc()
	sp := obs.Start("serve.reload.seconds")
	defer sp.End()

	cur := t.current()
	if t.snapshotDir == "" {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, ErrNotReloadable
	}

	// Stage + validate: a broken snapshot must be rejected before any
	// serving state is touched.
	d, err := snapio.Read(t.snapshotDir)
	if err == nil {
		err = validateDataset(d)
	}
	if err != nil {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, fmt.Errorf("serve: reload: stage %s: %w", t.snapshotDir, err)
	}

	// An unchanged snapshot is detected by digest before paying for a
	// fit: the warm registry survives a no-op reload.
	if modelcache.Digest(d.World, d.Sources) == cur.digest {
		obs.Counter("serve.reload.unchanged").Inc()
		return t.info(cur, false), nil
	}

	// Fit the candidate, then swap. A fit failure (or a canceled ctx)
	// discards the candidate; the serving generation is never touched.
	cand, err := t.buildGeneration(ctx, cur.id+1, d)
	if err != nil {
		obs.Counter("serve.reload.failures").Inc()
		return ReloadInfo{}, fmt.Errorf("serve: reload: fit: %w", err)
	}
	t.install(cand)
	obs.Counter("serve.reload.success").Inc()
	return t.info(cand, true), nil
}

func (t *Tenant) info(g *generation, swapped bool) ReloadInfo {
	return ReloadInfo{
		Tenant:     t.name,
		Generation: g.id,
		Swapped:    swapped,
		Dataset:    g.d.Name,
		Digest:     hex.EncodeToString(g.digest[:]),
	}
}

// handleReload is the admin trigger for reloadTenant: POST
// /v1/reload?tenant=name. It is deliberately outside the admission gate —
// an operator must be able to roll a snapshot while the server is
// saturated — and bounded by cfg.ReloadTimeout rather than the request
// timeout.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	t := s.tenantFor(w, r)
	if t == nil {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReloadTimeout)
	defer cancel()
	info, err := s.reloadTenant(ctx, t)
	switch {
	case errors.Is(err, ErrNotReloadable):
		writeErr(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	default:
		writeJSON(w, http.StatusOK, info)
	}
}
