// Deterministic fault-injection ("chaos") tests for the serving stack:
// every failure mode is driven through internal/faults, and every test
// proves a degraded-mode guarantee — the daemon keeps serving its
// last-good state no matter what the disk or the candidate data does.
// `make chaos` runs this file (plus the faults package) under -race.
package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"freshsource/internal/faults"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
)

// garble returns a copy of b with JSON-breaking bytes stamped into the
// middle — a torn or bit-rotted read.
func garble(b []byte) []byte {
	out := append([]byte(nil), b...)
	copy(out[len(out)/2:], "\x00\xffgarbage")
	return out
}

// TestChaosReloadCorruptSnapshotRollsBack is the headline guarantee: a
// corrupt candidate snapshot must leave the old generation serving. The
// corruption is injected at the snapio read seam, so the bytes on disk are
// fine — this is a torn read, the worst case to detect.
func TestChaosReloadCorruptSnapshotRollsBack(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	if err := snapio.Write(dir, testDataset(t)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{SnapshotDir: dir})
	defer srv.Close()

	want := postJSON(t, srv.Handler(), "/v1/select", `{}`)
	if want.Code != http.StatusOK {
		t.Fatalf("pre-chaos select: %d", want.Code)
	}

	faults.Set("snapio.read", faults.Fault{Corrupt: garble, Times: 1})
	failures0 := counter("serve.reload.failures")
	rec := postJSON(t, srv.Handler(), "/v1/reload", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("reload of a corrupt snapshot: %d %s, want 500", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "stage") {
		t.Errorf("error should name the stage phase: %s", rec.Body.String())
	}
	if faults.Fired("snapio.read") == 0 {
		t.Fatal("corruption fault never fired; the test proved nothing")
	}
	if counter("serve.reload.failures")-failures0 != 1 {
		t.Error("failed reload not counted")
	}

	// Degraded mode: generation 1 keeps serving, byte-identically.
	if srv.Generation() != 1 {
		t.Fatalf("generation moved to %d after a failed reload", srv.Generation())
	}
	got := postJSON(t, srv.Handler(), "/v1/select", `{}`)
	if got.Code != http.StatusOK || !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Error("last-good generation stopped serving identical results after rollback")
	}

	// Recovery: with the fault gone, the same reload path works again.
	faults.Reset()
	if err := snapio.Write(dir, altDataset(t)); err != nil {
		t.Fatal(err)
	}
	if rec := postJSON(t, srv.Handler(), "/v1/reload", ""); rec.Code != http.StatusOK {
		t.Fatalf("post-chaos reload: %d %s", rec.Code, rec.Body.String())
	}
	if srv.Generation() != 2 {
		t.Errorf("recovery reload did not swap (generation %d)", srv.Generation())
	}
}

// TestChaosReloadMidFitCancellation: a reload whose candidate fit outlives
// the reload deadline must discard the candidate and keep the serving
// generation; the abandoned fit is canceled, not leaked.
func TestChaosReloadMidFitCancellation(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	if err := snapio.Write(dir, altDataset(t)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{SnapshotDir: dir})
	defer srv.Close()

	faults.Set("serve.fit", faults.Fault{Delay: 500 * time.Millisecond, Times: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := srv.Reload(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-fit canceled reload: %v, want DeadlineExceeded", err)
	}
	if srv.Generation() != 1 {
		t.Fatalf("generation moved to %d after a canceled reload", srv.Generation())
	}
	if rec := postJSON(t, srv.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("select after canceled reload: %d", rec.Code)
	}

	// The same reload succeeds once the fit is allowed to finish.
	if _, err := srv.Reload(context.Background()); err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if srv.Generation() != 2 {
		t.Errorf("retry did not swap (generation %d)", srv.Generation())
	}
}

// TestChaosReloadUnderFire swaps generations while the select/quality
// endpoints are being hammered: every request must complete 200, whichever
// generation it started on.
func TestChaosReloadUnderFire(t *testing.T) {
	dir := t.TempDir()
	if err := snapio.Write(dir, testDataset(t)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{SnapshotDir: dir, MaxInflight: 64})
	defer srv.Close()
	if err := snapio.Write(dir, altDataset(t)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var rec = postJSON(t, srv.Handler(), "/v1/select", `{}`)
				if i%2 == 1 {
					rec = postJSON(t, srv.Handler(), "/v1/quality", `{"set":[1,3],"future":4}`)
				}
				if rec.Code != http.StatusOK {
					errs <- errors.New("under fire: " + rec.Body.String())
					return
				}
			}
		}(i)
	}

	info, err := srv.Reload(context.Background())
	close(stop)
	wg.Wait()
	close(errs)
	if err != nil {
		t.Fatalf("reload under fire: %v", err)
	}
	if !info.Swapped || info.Generation != 2 {
		t.Fatalf("reload under fire: %+v, want swapped generation 2", info)
	}
	for e := range errs {
		t.Error(e)
	}
	if rec := postJSON(t, srv.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("select on the swapped generation: %d", rec.Code)
	}
}

// TestChaosTornModelCacheRefits: a model-cache file corrupted at read time
// must be treated as absent — the server refits silently and still comes
// up warm.
func TestChaosTornModelCacheRefits(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	cfg := Config{ModelCacheDir: dir}

	// Cold start populates the cache.
	s1, err := New(regenDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	faults.Set("modelcache.load", faults.Fault{Corrupt: garble, Times: 1})
	corrupt0 := counter("serve.registry.modelcache_corrupt")
	s2, err := New(regenDataset(t), cfg)
	if err != nil {
		t.Fatalf("start over a torn cache file: %v", err)
	}
	defer s2.Close()
	if faults.Fired("modelcache.load") == 0 {
		t.Fatal("torn-read fault never fired")
	}
	if counter("serve.registry.modelcache_corrupt")-corrupt0 != 1 {
		t.Error("torn cache read not surfaced as a corrupt entry")
	}
	if rec := postJSON(t, s2.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("select after refit: %d", rec.Code)
	}
}

// TestChaosSlowDiskStillServes: disk latency on the model-cache read slows
// startup but never fails it.
func TestChaosSlowDiskStillServes(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	cfg := Config{ModelCacheDir: dir}
	s1, err := New(regenDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	const lag = 75 * time.Millisecond
	faults.Set("modelcache.load", faults.Fault{Delay: lag, Times: 1})
	t0 := time.Now()
	s2, err := New(regenDataset(t), cfg)
	if err != nil {
		t.Fatalf("start over a slow disk: %v", err)
	}
	defer s2.Close()
	if elapsed := time.Since(t0); elapsed < lag {
		t.Errorf("startup took %v, fault should have added %v", elapsed, lag)
	}
	if faults.Fired("modelcache.load") == 0 {
		t.Fatal("latency fault never fired")
	}
}

// TestChaosModelCacheSaveFailureNonFatal: a full or failing disk at
// cache-save time must not take the fit (or the server) down with it.
func TestChaosModelCacheSaveFailureNonFatal(t *testing.T) {
	defer faults.Reset()
	faults.Set("modelcache.save", faults.Fault{Err: errors.New("disk full")})
	saveErrs0 := counter("modelcache.save_errors")

	srv, err := New(regenDataset(t), Config{ModelCacheDir: t.TempDir()})
	if err != nil {
		t.Fatalf("startup with failing cache saves: %v", err)
	}
	defer srv.Close()
	if counter("modelcache.save_errors")-saveErrs0 != 1 {
		t.Error("failed save not counted")
	}
	if rec := postJSON(t, srv.Handler(), "/v1/select", `{}`); rec.Code != http.StatusOK {
		t.Errorf("select with failing cache saves: %d", rec.Code)
	}
}

// TestChaosFitErrorNotCached: a hard fit failure answers the triggering
// requests 5xx but is not cached — the next request retries and succeeds.
func TestChaosFitErrorNotCached(t *testing.T) {
	defer faults.Reset()
	obs.Enable()
	srv := newServer(t, Config{})
	defer srv.Close()

	faults.Set("serve.fit", faults.Fault{Err: errors.New("injected fit failure"), Times: 1})
	rec := postJSON(t, srv.Handler(), "/v1/select", `{"divisors":[2]}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("select over a failed fit: %d %s, want 500", rec.Code, rec.Body.String())
	}
	// The fault is exhausted; the retry must fit cleanly.
	rec = postJSON(t, srv.Handler(), "/v1/select", `{"divisors":[2]}`)
	if rec.Code != http.StatusOK {
		t.Errorf("retry after a failed fit: %d %s", rec.Code, rec.Body.String())
	}
}
