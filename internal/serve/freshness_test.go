package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"freshsource/internal/dataset"
	"freshsource/internal/faults"
	"freshsource/internal/obs"
	"freshsource/internal/snapio"
	"freshsource/internal/source"
)

func gauge(name string) float64 { return obs.Active().Gauge(name).Value() }

// TestFreshnessClassification pins the endpoint's contract on the fixture:
// totals partition the sources, thresholds derive from each source's own
// fitted update interval, and the per-status gauges mirror the totals.
func TestFreshnessClassification(t *testing.T) {
	srv := newServer(t, Config{})
	defer srv.Close()

	var resp FreshnessResponse
	rec := getJSON(t, srv.Handler(), "/v1/freshness", &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("freshness: %d %s", rec.Code, rec.Body.String())
	}
	d := testDataset(t)
	if resp.At != int64(d.T0) || resp.Generation != 1 || resp.Dataset != d.Name {
		t.Errorf("header: %+v", resp)
	}
	if resp.WarnFactor != 1.5 || resp.StaleFactor != 3.0 {
		t.Errorf("default factors: warn=%g stale=%g", resp.WarnFactor, resp.StaleFactor)
	}
	if len(resp.Sources) != len(d.Sources) {
		t.Fatalf("%d sources, want %d", len(resp.Sources), len(d.Sources))
	}
	sum := 0
	for _, st := range []string{StatusFresh, StatusWarning, StatusStale} {
		sum += resp.Totals[st]
	}
	if sum != len(d.Sources) {
		t.Errorf("totals %v do not partition %d sources", resp.Totals, len(d.Sources))
	}
	for _, fs := range resp.Sources {
		if fs.UpdateInterval <= 0 {
			t.Errorf("%s: no fitted update interval", fs.Name)
		}
		if fs.WarnAfter > fs.StaleAfter {
			t.Errorf("%s: warn_after %g > stale_after %g", fs.Name, fs.WarnAfter, fs.StaleAfter)
		}
		want := classify(fs.AgeTicks, fs.WarnAfter, fs.StaleAfter)
		if fs.Status != want {
			t.Errorf("%s: status %s, want %s for age %d", fs.Name, fs.Status, want, fs.AgeTicks)
		}
	}
	if int(gauge("serve.freshness.fresh")) != resp.Totals[StatusFresh] ||
		int(gauge("serve.freshness.warning")) != resp.Totals[StatusWarning] ||
		int(gauge("serve.freshness.stale")) != resp.Totals[StatusStale] {
		t.Errorf("gauges disagree with totals %v", resp.Totals)
	}

	// Absurdly generous thresholds: every captured source is fresh.
	getJSON(t, srv.Handler(), "/v1/freshness?warn=1e6&stale=1e6", &resp)
	for _, fs := range resp.Sources {
		if fs.AgeTicks >= 0 && fs.Status != StatusFresh {
			t.Errorf("%s: %s under a 1e6 threshold", fs.Name, fs.Status)
		}
	}
}

// TestFreshnessEqualThresholds: warn == stale collapses the warning band —
// classification is binary and nothing can land in the middle.
func TestFreshnessEqualThresholds(t *testing.T) {
	srv := newServer(t, Config{})
	defer srv.Close()

	var resp FreshnessResponse
	getJSON(t, srv.Handler(), "/v1/freshness?warn=0.5&stale=0.5", &resp)
	if resp.Totals[StatusWarning] != 0 {
		t.Errorf("equal thresholds produced warnings: %v", resp.Totals)
	}
	for _, fs := range resp.Sources {
		if fs.Status == StatusWarning {
			t.Errorf("%s: warning with an empty warning band", fs.Name)
		}
	}
}

// TestFreshnessZeroCaptures: a source whose log holds nothing at or before
// the evaluation tick is always stale, whatever the thresholds say.
func TestFreshnessZeroCaptures(t *testing.T) {
	base := testDataset(t)
	d := &dataset.Dataset{Name: "truncated", World: base.World, T0: base.T0}
	d.Sources = append([]*source.Source(nil), base.Sources...)
	// Source 0 keeps only events after T0: at the default evaluation tick
	// it has never captured anything.
	d.Sources[0] = base.Sources[0].Truncate(base.T0 + 1)

	srv, err := New(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var resp FreshnessResponse
	getJSON(t, srv.Handler(), "/v1/freshness?warn=1e6&stale=1e6", &resp)
	fs := resp.Sources[0]
	if fs.Status != StatusStale || fs.LastCapture != -1 || fs.AgeTicks != -1 {
		t.Errorf("zero-capture source: %+v, want stale with no capture", fs)
	}
	if resp.Totals[StatusStale] < 1 {
		t.Errorf("totals missed the zero-capture source: %v", resp.Totals)
	}
}

// TestFreshnessValidation walks the 4xx surface.
func TestFreshnessValidation(t *testing.T) {
	srv := newServer(t, Config{})
	defer srv.Close()
	d := testDataset(t)

	for _, path := range []string{
		"/v1/freshness?at=bogus",
		fmt.Sprintf("/v1/freshness?at=%d", d.Horizon()), // past the horizon
		"/v1/freshness?at=-3",
		"/v1/freshness?warn=bogus",
		"/v1/freshness?stale=bogus",
		"/v1/freshness?warn=0",         // warn must be positive
		"/v1/freshness?warn=2&stale=1", // stale < warn
	} {
		if rec := getJSON(t, srv.Handler(), path, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400 (%s)", path, rec.Code, rec.Body.String())
		}
	}
	if rec := postJSON(t, srv.Handler(), "/v1/freshness", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", rec.Code)
	}

	// An explicit historical tick is accepted and ages shrink accordingly.
	var resp FreshnessResponse
	rec := getJSON(t, srv.Handler(), fmt.Sprintf("/v1/freshness?at=%d", d.T0-20), &resp)
	if rec.Code != http.StatusOK || resp.At != int64(d.T0-20) {
		t.Errorf("historical at: %d %+v", rec.Code, resp)
	}
}

// TestFreshnessWhileFitInFlight: when the serving generation's base models
// are still fitting (a cold registry with a slow fit), a freshness request
// waits like any other — and gets a clean 504 when its deadline fires
// first, not a hang and not a 500.
func TestFreshnessWhileFitInFlight(t *testing.T) {
	srv := newServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	defer srv.Close()
	defer faults.Reset()

	// Swap in a generation whose registry is cold and whose fit stalls.
	faults.Set("serve.fit", faults.Fault{Delay: 2 * time.Second, Times: 1})
	old := srv.current()
	cold := &generation{
		id:     old.id + 1,
		d:      old.d,
		reg:    NewRegistry(context.Background(), old.d, 16, 0, nil),
		digest: old.digest,
	}
	defer cold.reg.Close()
	srv.install(cold)

	rec := getJSON(t, srv.Handler(), "/v1/freshness", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("freshness during fit: %d %s, want 504", rec.Code, rec.Body.String())
	}
	if faults.Fired("serve.fit") == 0 {
		t.Error("stall fault never fired")
	}
	srv.install(old) // restore the warm generation for the shared fixture
}

// TestFreshnessAcrossReloadSwap hammers /v1/freshness concurrently with a
// generation swap: every response must be coherent (200 with totals that
// partition the sources of whichever generation served it) — a swap must
// never surface as an error or a half-updated view.
func TestFreshnessAcrossReloadSwap(t *testing.T) {
	dir := t.TempDir()
	if err := snapio.Write(dir, testDataset(t)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(t, Config{SnapshotDir: dir})
	defer srv.Close()

	if err := snapio.Write(dir, altDataset(t)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/freshness", nil))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("freshness during swap: %d %s", rec.Code, rec.Body.String())
					return
				}
				var resp FreshnessResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				total := resp.Totals[StatusFresh] + resp.Totals[StatusWarning] + resp.Totals[StatusStale]
				if total != len(resp.Sources) || total == 0 {
					errs <- fmt.Errorf("incoherent totals %v over %d sources (generation %d)",
						resp.Totals, len(resp.Sources), resp.Generation)
					return
				}
			}
		}()
	}

	rec := postJSON(t, srv.Handler(), "/v1/reload", "")
	close(stop)
	wg.Wait()
	close(errs)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Error(err)
		}
	}

	var resp FreshnessResponse
	getJSON(t, srv.Handler(), "/v1/freshness", &resp)
	if resp.Generation != 2 || resp.Dataset != "alt" {
		t.Errorf("after swap: generation %d dataset %q", resp.Generation, resp.Dataset)
	}
}
