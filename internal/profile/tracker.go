package profile

import (
	"fmt"

	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Tracker incrementally maintains one source's profiling sufficient
// statistics — the capture index behind the Kaplan–Meier effectiveness
// fits, the entity-state map behind the signatures, and the schedule
// accumulator behind ūS/tS0 — so the training cut can advance without
// rescanning the source's history.
//
// The invariant: after NewTracker(w, s, t0, pts) and any sequence of
// Extend calls ending at cut c, Build() returns a Profile identical (to
// the byte) to profile.Build(w, s', c, pts) where s' is the source whose
// log is s's archived events plus every streamed delta. This holds because
// all three statistics are pure folds over the time-ordered event stream:
// the capture index is first-capture-wins (order-defined by timeline.Less,
// which Extend's merge preserves), the entity-state map applies
// timeline.ApplyEvent in the same order a cold Materialize would, and the
// schedule fold accumulates distinct-tick gaps left-to-right. Build then
// runs the exact enumeration code Build/buildEffectiveness runs, so the
// delay-observation multisets — and their order — match a cold build.
//
// A Tracker is not safe for concurrent use; the ingestion layer serializes
// epochs.
type Tracker struct {
	w     *world.World
	src   *source.Source
	pts   []world.DomainPoint
	inPts func(world.DomainPoint) bool

	cut    timeline.Tick
	caps   map[timeline.EntityID]*captures
	states map[timeline.EntityID]timeline.EntityState
	sched  scheduleStats
}

// NewTracker builds a tracker positioned at cut t0, folding the source's
// archived events in [0, t0] (the same prefix a cold Build consumes).
func NewTracker(w *world.World, s *source.Source, t0 timeline.Tick, pts []world.DomainPoint) (*Tracker, error) {
	if t0 < 0 || t0 >= w.Horizon() {
		return nil, fmt.Errorf("profile: t0 %d outside world window [0, %d)", t0, w.Horizon())
	}
	tr := &Tracker{
		w:      w,
		src:    s,
		pts:    pts,
		inPts:  inPtsFunc(pts),
		cut:    t0,
		caps:   make(map[timeline.EntityID]*captures),
		states: make(map[timeline.EntityID]timeline.EntityState),
	}
	for _, ev := range s.Log().Events() {
		if ev.At > t0 {
			break
		}
		tr.observe(ev)
	}
	return tr, nil
}

// Cut returns the tracker's current training cut.
func (tr *Tracker) Cut() timeline.Tick { return tr.cut }

// observe folds one event into all three statistics. Events must arrive in
// timeline.Less order across the tracker's whole lifetime.
func (tr *Tracker) observe(ev timeline.Event) {
	tr.sched.observe(ev.At)
	timeline.ApplyEvent(tr.states, ev)
	observeCapture(tr.caps, ev, tr.w, tr.inPts)
}

// Extend advances the cut to newCut, folding in the source's own archived
// events in (cut, newCut] merged with delta — the streamed observations
// accepted for this source since the last cut. delta must be sorted by
// timeline.Less with every tick in (cut, newCut]; entity ids must exist in
// the world. The merge preserves global Log order, which is what makes the
// incremental fold exact.
func (tr *Tracker) Extend(newCut timeline.Tick, delta []timeline.Event) error {
	if newCut < tr.cut || (newCut == tr.cut && len(delta) > 0) {
		return fmt.Errorf("profile: tracker cut moved backwards: %d -> %d", tr.cut, newCut)
	}
	if newCut >= tr.w.Horizon() {
		return fmt.Errorf("profile: cut %d outside world window [0, %d)", newCut, tr.w.Horizon())
	}
	n := tr.w.NumEntities()
	for i, ev := range delta {
		if ev.At <= tr.cut || ev.At > newCut {
			return fmt.Errorf("profile: delta tick %d outside (%d, %d]", ev.At, tr.cut, newCut)
		}
		if int(ev.Entity) < 0 || int(ev.Entity) >= n {
			return fmt.Errorf("profile: delta entity %d outside [0, %d)", ev.Entity, n)
		}
		if i > 0 && timeline.Less(ev, delta[i-1]) {
			return fmt.Errorf("profile: delta not sorted at index %d", i)
		}
	}
	arch := tr.src.Log().Between(tr.cut+1, newCut+1)
	i, j := 0, 0
	for i < len(arch) || j < len(delta) {
		if j >= len(delta) || (i < len(arch) && !timeline.Less(delta[j], arch[i])) {
			tr.observe(arch[i])
			i++
		} else {
			tr.observe(delta[j])
			j++
		}
	}
	tr.cut = newCut
	return nil
}

// Build materialises the Profile at the current cut from the maintained
// statistics. It runs the same signature classification, observation
// enumeration and schedule finisher as profile.Build, so the result is
// byte-identical to a cold build over the extended log.
func (tr *Tracker) Build() (*Profile, error) {
	p := &Profile{SourceID: tr.src.ID(), Name: tr.src.Name(), T0: tr.cut, AcqDivisor: 1}
	p.buildSignatures(tr.w, tr.states, tr.inPts)
	p.buildEffectiveness(tr.w, tr.caps, tr.pts)
	p.applySchedule(tr.sched, tr.src.UpdateInterval())
	alive := tr.w.AliveCount(tr.cut, tr.pts)
	if alive > 0 {
		p.CoverageT0 = float64(p.Bcov.Count()) / float64(alive)
	}
	return p, nil
}
