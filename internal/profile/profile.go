// Package profile builds the per-source summaries of Section 4.1.2 of the
// paper from the historical window [0, t0]:
//
//   - the three bit-array signatures of Section 4.2.1 — B (all items the
//     source holds at t0), Bcov (its up-to-date and out-of-date items) and
//     Bup (its up-to-date items);
//   - the effectiveness distributions Gi, Gd and Gu — Kaplan–Meier
//     empirical distributions of the delay between a world change and its
//     capture by the source, learned from exact and right-censored delay
//     observations (Figure 7);
//   - the source's update frequency fS = 1/ūS estimated from the observed
//     intervals between content updates, and the last update tick tS0,
//     which anchor the schedule function TS(t) of Eq. 8.
//
// Profiles are built against a world evolution — either the simulator's
// ground truth or a reconstruction from package histint — and are the only
// input the future-quality estimators of package estimate need about a
// source.
package profile

import (
	"errors"
	"fmt"

	"freshsource/internal/bitset"
	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

// Profile summarises one source at the end of the training window.
type Profile struct {
	// SourceID identifies the profiled source.
	SourceID source.ID
	// Name is the source's display name.
	Name string
	// T0 is the end of the training window the profile was built on.
	T0 timeline.Tick

	// B, Bcov and Bup are the signatures of Section 4.2.1 over the entity
	// universe (restricted to the profiled domain points).
	B    *bitset.Set
	Bcov *bitset.Set
	Bup  *bitset.Set

	// Gi, Gd and Gu are the capture-effectiveness distributions for
	// insertions, deletions and value updates. A nil distribution means no
	// observation was available; the estimators treat it as
	// zero effectiveness.
	Gi *stats.KaplanMeier
	Gd *stats.KaplanMeier
	Gu *stats.KaplanMeier

	// UpdateInterval is the estimated mean interval ūS between source
	// content updates, in ticks; the update frequency is fS = 1/ūS.
	UpdateInterval float64
	// LastUpdate is tS0, the last tick at or before T0 at which the source
	// updated its content.
	LastUpdate timeline.Tick
	// AcqDivisor m ≥ 1 models acquiring the source's updates at fS/m
	// (Definition 4). Profiles built by Build have divisor 1; use
	// WithDivisor to derive slower-acquisition variants.
	AcqDivisor int

	// CoverageT0 is the source's coverage at T0 over the profiled points,
	// used as the Cov(S, τ) factor of Eq. 10–11.
	CoverageT0 float64

	// InsertDelays are the (exact + right-censored) insertion-delay
	// observations behind Gi, retained for the delay histograms of
	// Figure 7.
	InsertDelays []stats.Duration
}

// Build profiles a source against the world over the training window
// [0, t0], restricted to domain points pts (nil = all).
func Build(w *world.World, s *source.Source, t0 timeline.Tick, pts []world.DomainPoint) (*Profile, error) {
	if t0 < 0 || t0 >= w.Horizon() {
		return nil, fmt.Errorf("profile: t0 %d outside world window [0, %d)", t0, w.Horizon())
	}
	p := &Profile{SourceID: s.ID(), Name: s.Name(), T0: t0, AcqDivisor: 1}

	inPts := inPtsFunc(pts)

	p.buildSignatures(w, s.SnapshotAt(t0).States, inPts)
	caps := make(map[timeline.EntityID]*captures)
	for _, ev := range s.Log().Events() {
		if ev.At > t0 {
			break
		}
		observeCapture(caps, ev, w, inPts)
	}
	p.buildEffectiveness(w, caps, pts)
	var sched scheduleStats
	for _, ev := range s.Log().Events() {
		if ev.At > t0 {
			break
		}
		sched.observe(ev.At)
	}
	p.applySchedule(sched, s.UpdateInterval())

	alive := w.AliveCount(t0, pts)
	if alive > 0 {
		p.CoverageT0 = float64(p.Bcov.Count()) / float64(alive)
	}
	return p, nil
}

// inPtsFunc compiles a domain-point restriction into a membership predicate
// (nil pts = no restriction).
func inPtsFunc(pts []world.DomainPoint) func(world.DomainPoint) bool {
	if pts == nil {
		return func(world.DomainPoint) bool { return true }
	}
	set := make(map[world.DomainPoint]bool, len(pts))
	for _, pt := range pts {
		set[pt] = true
	}
	return func(pt world.DomainPoint) bool { return set[pt] }
}

// buildSignatures classifies each entity of a source snapshot (its
// entity-state map at T0) against the world. The bitset adds are
// order-independent, so any map works — Build passes a materialised
// snapshot, Tracker its incrementally maintained state.
func (p *Profile) buildSignatures(w *world.World, states map[timeline.EntityID]timeline.EntityState, inPts func(world.DomainPoint) bool) {
	n := w.NumEntities()
	p.B, p.Bcov, p.Bup = bitset.New(n), bitset.New(n), bitset.New(n)
	for id, st := range states {
		e := w.Entity(id)
		if !inPts(e.Point) {
			continue
		}
		p.B.Add(int(id))
		wv, alive := e.VersionAt(p.T0)
		if !alive {
			continue // non-deleted: in B only
		}
		p.Bcov.Add(int(id))
		if st.Version >= wv {
			p.Bup.Add(int(id))
		}
	}
}

// captures indexes one entity's capture ticks at a source: the first
// Appear/Disappear capture and, per version, the first Update capture.
// "First capture wins" matches replay order, so the index is a pure fold
// over the time-ordered event stream — the sufficient statistic behind the
// Kaplan–Meier effectiveness fits.
type captures struct {
	ins    timeline.Tick
	hasIns bool
	del    timeline.Tick
	hasDel bool
	upd    map[int]timeline.Tick // version → capture tick
}

// observeCapture folds one source event into the capture index. Events must
// arrive in Log order (timeline.Less); it is the single definition of the
// capture semantics, shared by Build's cold scan and Tracker's streaming
// feed.
func observeCapture(caps map[timeline.EntityID]*captures, ev timeline.Event, w *world.World, inPts func(world.DomainPoint) bool) {
	if !inPts(w.Entity(ev.Entity).Point) {
		return
	}
	c := caps[ev.Entity]
	if c == nil {
		c = &captures{}
		caps[ev.Entity] = c
	}
	switch ev.Kind {
	case timeline.Appear:
		if !c.hasIns {
			c.ins, c.hasIns = ev.At, true
		}
	case timeline.Disappear:
		if !c.hasDel {
			c.del, c.hasDel = ev.At, true
		}
	case timeline.Update:
		if c.upd == nil {
			c.upd = make(map[int]timeline.Tick)
		}
		if _, dup := c.upd[ev.Version]; !dup {
			c.upd[ev.Version] = ev.At
		}
	}
}

// buildEffectiveness extracts the exact and right-censored delay
// observations for insertions, deletions and value updates from the capture
// index, and fits the Kaplan–Meier distributions. When the profile is
// restricted to pts, the per-point entity index keeps the scan proportional
// to the restriction.
func (p *Profile) buildEffectiveness(w *world.World, caps map[timeline.EntityID]*captures, pts []world.DomainPoint) {
	var insObs, delObs, updObs []stats.Duration
	entityIDs := func(fn func(e *world.Entity)) {
		if pts == nil {
			for i := range w.Entities() {
				fn(&w.Entities()[i])
			}
			return
		}
		for _, pt := range pts {
			for _, id := range w.EntitiesOf(pt) {
				fn(w.Entity(id))
			}
		}
	}
	entityIDs(func(e *world.Entity) {
		if e.Born >= p.T0 {
			return
		}
		c := caps[e.ID]
		// Insertion delay: world birth → source insertion.
		if c != nil && c.hasIns {
			insObs = append(insObs, stats.Duration{Value: float64(c.ins - e.Born)})
		} else {
			insObs = append(insObs, stats.Duration{Value: float64(p.T0 - e.Born), Censored: true})
		}
		// Deletion and update delays are conditional on the source
		// mentioning the entity (the Cov(S, τ) factor of Eq. 10 handles
		// the mention probability).
		if c == nil || !c.hasIns {
			return
		}
		if e.Died >= 0 && e.Died <= p.T0 {
			if c.hasDel {
				delObs = append(delObs, stats.Duration{Value: float64(c.del - e.Died)})
			} else {
				delObs = append(delObs, stats.Duration{Value: float64(p.T0 - e.Died), Censored: true})
			}
		}
		for v, u := range e.Updates {
			if u > p.T0 {
				break
			}
			if cap, ok := c.upd[v+1]; ok {
				updObs = append(updObs, stats.Duration{Value: float64(cap - u)})
			} else {
				updObs = append(updObs, stats.Duration{Value: float64(p.T0 - u), Censored: true})
			}
		}
	})
	p.InsertDelays = insObs
	p.Gi = fitKM(insObs)
	p.Gd = fitKM(delObs)
	p.Gu = fitKM(updObs)
}

func fitKM(obs []stats.Duration) *stats.KaplanMeier {
	if len(obs) == 0 {
		return nil
	}
	km, err := stats.NewKaplanMeier(obs)
	if err != nil {
		return nil
	}
	return km
}

// scheduleStats accumulates the distinct content-update timestamps (the set
// MS of Section 4.1.2) as (count, last tick, sum of gaps). Folding gaps
// left-to-right in tick order makes the accumulated float sum identical to
// a cold scan over the same stream — the schedule's sufficient statistic.
type scheduleStats struct {
	ticks  int
	last   timeline.Tick
	gapSum float64
}

// observe folds one event timestamp; timestamps must arrive in
// nondecreasing order.
func (st *scheduleStats) observe(at timeline.Tick) {
	if st.ticks == 0 {
		st.ticks, st.last = 1, at
		return
	}
	if at != st.last {
		st.ticks++
		st.gapSum += float64(at - st.last)
		st.last = at
	}
}

// applySchedule estimates the source's update interval ūS from the
// accumulated schedule statistics and records the last update tick tS0.
// declared is the source's declared interval, the fallback when fewer than
// two distinct update ticks were observed.
func (p *Profile) applySchedule(st scheduleStats, declared timeline.Tick) {
	if st.ticks == 0 {
		// A source with no observed update: fall back to its declared
		// schedule so TS(t) remains well-defined.
		p.UpdateInterval = float64(declared)
		p.LastUpdate = 0
		return
	}
	p.LastUpdate = st.last
	if st.ticks == 1 {
		p.UpdateInterval = float64(declared)
		return
	}
	p.UpdateInterval = st.gapSum / float64(st.ticks-1)
}

// WithDivisor derives a profile whose updates are acquired every
// m·ūS ticks instead of every ūS — the augmented sources S^m of
// Definition 4. The effectiveness distributions are shared (they describe
// the source, not the acquisition), while the schedule coarsens.
func (p *Profile) WithDivisor(m int) (*Profile, error) {
	if m < 1 {
		return nil, errors.New("profile: divisor must be >= 1")
	}
	if m == 1 {
		return p, nil
	}
	q := *p
	q.AcqDivisor = m
	q.Name = fmt.Sprintf("%s/%d", p.Name, m)
	return &q, nil
}

// acqInterval returns the effective acquisition interval in ticks,
// at least 1.
func (p *Profile) acqInterval() timeline.Tick {
	iv := timeline.Tick(p.UpdateInterval*float64(p.AcqDivisor) + 0.5)
	if iv < 1 {
		iv = 1
	}
	return iv
}

// TS returns the latest acquisition tick at or before t (Eq. 8's TS(t)),
// anchored at the source's last observed update tS0.
func (p *Profile) TS(t timeline.Tick) timeline.Tick {
	iv := p.acqInterval()
	if t <= p.LastUpdate {
		return p.LastUpdate
	}
	k := (t - p.LastUpdate) / iv
	return p.LastUpdate + k*iv
}

// eff evaluates one effectiveness distribution under the schedule
// alignment of Eq. 8: the probability that a change occurring at tc is
// reflected in the acquired content by time t.
func (p *Profile) eff(g *stats.KaplanMeier, t, tc timeline.Tick) float64 {
	if g == nil {
		return 0
	}
	ts := p.TS(t)
	if ts < tc || t < ts {
		return 0
	}
	return g.CDF(float64(ts - tc))
}

// EffIns is Gi(t, tc): the probability an entity appearing at tc is in the
// acquired content by t.
func (p *Profile) EffIns(t, tc timeline.Tick) float64 { return p.eff(p.Gi, t, tc) }

// EffDel is Gd(t, tc) for disappearances, conditional on the source
// mentioning the entity.
func (p *Profile) EffDel(t, tc timeline.Tick) float64 { return p.eff(p.Gd, t, tc) }

// EffUpd is Gu(t, tc) for value changes, conditional on mention.
func (p *Profile) EffUpd(t, tc timeline.Tick) float64 { return p.eff(p.Gu, t, tc) }

// Freq returns the estimated update frequency fS = 1/ūS (per tick).
func (p *Profile) Freq() float64 {
	if p.UpdateInterval <= 0 {
		return 0
	}
	return 1 / p.UpdateInterval
}

// Size returns the number of items the source held at T0.
func (p *Profile) Size() int { return p.B.Count() }
