package profile

import (
	"math"
	"testing"

	"freshsource/internal/source"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func testWorld(t *testing.T) *world.World {
	t.Helper()
	w, err := world.Generate(world.Config{
		Subdomains: []world.SubdomainSpec{
			{Point: world.DomainPoint{Location: 0, Category: 0}, InitialEntities: 500, LambdaAppear: 3, GammaDisappear: 0.012, GammaUpdate: 0.03},
			{Point: world.DomainPoint{Location: 1, Category: 0}, InitialEntities: 300, LambdaAppear: 2, GammaDisappear: 0.012, GammaUpdate: 0.03},
		},
		Horizon: 400,
		Seed:    77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func observe(t *testing.T, w *world.World, spec source.Spec, seed int64) *source.Source {
	t.Helper()
	s, err := source.Observe(w, 0, spec, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func spec(interval timeline.Tick, insP, delP, updP float64, insDelayRate float64) source.Spec {
	return source.Spec{
		Name:           "s",
		UpdateInterval: interval,
		Points:         []world.DomainPoint{{Location: 0, Category: 0}, {Location: 1, Category: 0}},
		Insert:         source.CaptureSpec{Prob: insP, Delay: source.ExponentialDelay{Rate: insDelayRate}},
		Delete:         source.CaptureSpec{Prob: delP, Delay: source.ExponentialDelay{Rate: insDelayRate}},
		Update:         source.CaptureSpec{Prob: updP, Delay: source.ExponentialDelay{Rate: insDelayRate}},
	}
}

func TestBuildValidation(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(1, 1, 1, 1, 1), 1)
	if _, err := Build(w, s, -1, nil); err == nil {
		t.Error("want error for negative t0")
	}
	if _, err := Build(w, s, w.Horizon(), nil); err == nil {
		t.Error("want error for t0 at horizon")
	}
}

func TestSignaturesPerfectSource(t *testing.T) {
	w := testWorld(t)
	sp := spec(1, 1, 1, 1, 1)
	sp.Insert.Delay = source.ConstantDelay{D: 0}
	sp.Delete.Delay = source.ConstantDelay{D: 0}
	sp.Update.Delay = source.ConstantDelay{D: 0}
	s := observe(t, w, sp, 1)
	t0 := timeline.Tick(300)
	p, err := Build(w, s, t0, nil)
	if err != nil {
		t.Fatal(err)
	}
	alive := w.AliveCount(t0, nil)
	// A perfect prompt source holds exactly the live world, all up-to-date.
	if p.B.Count() != alive {
		t.Errorf("B = %d, alive = %d", p.B.Count(), alive)
	}
	if !p.Bup.Equal(p.Bcov) || !p.Bcov.Equal(p.B) {
		t.Error("perfect source should have B = Bcov = Bup")
	}
	if math.Abs(p.CoverageT0-1) > 1e-12 {
		t.Errorf("coverage = %v", p.CoverageT0)
	}
	if p.Size() != alive {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestSignatureNesting(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(1, 0.8, 0.4, 0.5, 0.3), 2)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Bup.IsSubsetOf(p.Bcov) {
		t.Error("Bup ⊄ Bcov")
	}
	if !p.Bcov.IsSubsetOf(p.B) {
		t.Error("Bcov ⊄ B")
	}
	// With missed deletions there must be stale entries: B strictly larger.
	if p.B.Count() == p.Bcov.Count() {
		t.Error("expected non-deleted entries in B \\ Bcov")
	}
	if p.Bcov.Count() == p.Bup.Count() {
		t.Error("expected out-of-date entries in Bcov \\ Bup")
	}
}

func TestEffectivenessRecoversDelay(t *testing.T) {
	w := testWorld(t)
	// Constant insertion delay of 5 ticks, always captured.
	sp := spec(1, 1, 1, 1, 1)
	sp.Insert.Delay = source.ConstantDelay{D: 5}
	s := observe(t, w, sp, 3)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Gi == nil {
		t.Fatal("nil Gi")
	}
	if got := p.Gi.CDF(4); got > 0.05 {
		t.Errorf("Gi(4) = %v, want ≈ 0 for constant delay 5", got)
	}
	if got := p.Gi.CDF(5); got < 0.95 {
		t.Errorf("Gi(5) = %v, want ≈ 1", got)
	}
}

func TestEffectivenessPlateauMatchesCaptureProb(t *testing.T) {
	w := testWorld(t)
	sp := spec(1, 0.6, 1, 1, 2)
	s := observe(t, w, sp, 4)
	p, err := Build(w, s, 350, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 40% of entities are never captured → the KM plateau sits near 0.6.
	if pl := p.Gi.Plateau(); math.Abs(pl-0.6) > 0.08 {
		t.Errorf("Gi plateau = %v, want ≈ 0.6", pl)
	}
}

func TestScheduleEstimation(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(7, 1, 1, 1, 1), 5)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.UpdateInterval-7) > 0.5 {
		t.Errorf("estimated interval = %v, want ≈ 7", p.UpdateInterval)
	}
	if math.Abs(p.Freq()-1.0/7) > 0.02 {
		t.Errorf("freq = %v", p.Freq())
	}
	if p.LastUpdate > 300 {
		t.Errorf("LastUpdate %d beyond t0", p.LastUpdate)
	}
	// TS is anchored at LastUpdate and steps by the interval.
	ts := p.TS(p.LastUpdate + 20)
	if ts < p.LastUpdate || ts > p.LastUpdate+20 {
		t.Errorf("TS = %d out of range", ts)
	}
	if got := p.TS(p.LastUpdate); got != p.LastUpdate {
		t.Errorf("TS(tS0) = %d", got)
	}
	if got := p.TS(p.LastUpdate - 3); got != p.LastUpdate {
		t.Errorf("TS before tS0 = %d, want tS0", got)
	}
}

func TestEffAlignment(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(10, 1, 1, 1, 100), 6)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := p.LastUpdate + 5 // change occurs between acquisitions
	// Before the next acquisition the change cannot be visible.
	if got := p.EffIns(tc+1, tc); got != 0 {
		t.Errorf("EffIns before acquisition = %v, want 0", got)
	}
	// At/after the next acquisition visibility jumps.
	next := p.TS(tc + 20)
	if next <= tc {
		t.Fatalf("test setup: next acquisition %d not after tc %d", next, tc)
	}
	if got := p.EffIns(next, tc); got <= 0 {
		t.Errorf("EffIns at next acquisition = %v, want > 0", got)
	}
}

func TestEffMonotoneInT(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(3, 0.9, 0.8, 0.7, 0.5), 7)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := timeline.Tick(305)
	prev := -1.0
	for t1 := tc; t1 < tc+60; t1++ {
		got := p.EffIns(t1, tc)
		if got < prev-1e-12 {
			t.Fatalf("EffIns not monotone at %d: %v < %v", t1, got, prev)
		}
		if got < 0 || got > 1 {
			t.Fatalf("EffIns out of [0,1]: %v", got)
		}
		prev = got
	}
}

func TestWithDivisor(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(2, 1, 1, 1, 1), 8)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := p.WithDivisor(3)
	if err != nil {
		t.Fatal(err)
	}
	if p3.AcqDivisor != 3 {
		t.Errorf("divisor = %d", p3.AcqDivisor)
	}
	if p3 == p {
		t.Error("WithDivisor(3) must copy")
	}
	same, err := p.WithDivisor(1)
	if err != nil || same != p {
		t.Error("WithDivisor(1) should return the receiver")
	}
	if _, err := p.WithDivisor(0); err == nil {
		t.Error("want error for divisor 0")
	}
	// Coarser acquisition can only lag: effectiveness at equal t is ≤.
	tc := p.LastUpdate + 1
	for dt := timeline.Tick(1); dt < 40; dt++ {
		if p3.EffIns(tc+dt, tc) > p.EffIns(tc+dt, tc)+1e-12 {
			t.Fatalf("divided acquisition ahead of full at dt=%d", dt)
		}
	}
}

func TestDomainRestrictedProfile(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(1, 1, 1, 1, 5), 9)
	p0 := world.DomainPoint{Location: 0, Category: 0}
	p, err := Build(w, s, 300, []world.DomainPoint{p0})
	if err != nil {
		t.Fatal(err)
	}
	p.B.ForEach(func(i int) {
		if w.Entity(timeline.EntityID(i)).Point != p0 {
			t.Fatalf("entity %d outside restricted domain in B", i)
		}
	})
	all, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.B.Count() >= all.B.Count() {
		t.Error("restricted profile should be strictly smaller here")
	}
}

func TestNoObservationsNilDistributions(t *testing.T) {
	w := testWorld(t)
	sp := spec(1, 0, 0, 0, 1)
	s := observe(t, w, sp, 10)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insertions all censored → Gi exists but is the zero CDF; deletions
	// and updates have no conditional observations at all → nil.
	if p.Gi == nil {
		t.Error("Gi should exist from censored observations")
	} else if p.Gi.Plateau() != 0 {
		t.Errorf("Gi plateau = %v, want 0", p.Gi.Plateau())
	}
	if p.Gd != nil || p.Gu != nil {
		t.Error("Gd/Gu should be nil with no mentions")
	}
	if p.EffDel(310, 305) != 0 || p.EffUpd(310, 305) != 0 {
		t.Error("nil distributions must give zero effectiveness")
	}
	if p.Size() != 0 {
		t.Errorf("empty source Size = %d", p.Size())
	}
}

func TestInsertDelaysRetained(t *testing.T) {
	w := testWorld(t)
	s := observe(t, w, spec(1, 0.7, 1, 1, 0.4), 11)
	p, err := Build(w, s, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.InsertDelays) == 0 {
		t.Fatal("no retained delay observations")
	}
	exact, censored := 0, 0
	for _, d := range p.InsertDelays {
		if d.Censored {
			censored++
		} else {
			exact++
		}
	}
	if exact == 0 || censored == 0 {
		t.Errorf("want both exact (%d) and censored (%d) observations", exact, censored)
	}
}
