package selection

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLazyGreedyMatchesGreedyOnSubmodular(t *testing.T) {
	// Weighted coverage minus additive cost is submodular: lazy greedy must
	// match plain greedy's value, with no more oracle calls.
	o1 := simpleOracle()
	g := Greedy(o1, 3)
	o2 := simpleOracle()
	l := LazyGreedy(o2, 3)
	if math.Abs(g.Value-l.Value) > 1e-12 {
		t.Errorf("lazy %v != greedy %v", l.Value, g.Value)
	}
	if !equalSets(g.Set, l.Set) {
		t.Errorf("lazy set %v != greedy set %v", l.Set, g.Set)
	}
}

func TestLazyGreedyFewerCallsOnLargeInstance(t *testing.T) {
	// Many candidates with disjoint coverage: after the first round most
	// stale marginals stay exact, so lazy greedy saves calls.
	build := func() *coverOracle {
		o := &coverOracle{}
		for i := 0; i < 60; i++ {
			o.covers = append(o.covers, []int{i})
			o.weights = append(o.weights, 1+float64(i%7)/10)
			o.costs = append(o.costs, 0.3)
		}
		return o
	}
	og := build()
	g := Greedy(og, 60)
	ol := build()
	l := LazyGreedy(ol, 60)
	if math.Abs(g.Value-l.Value) > 1e-9 {
		t.Fatalf("values differ: %v vs %v", g.Value, l.Value)
	}
	if l.OracleCalls >= g.OracleCalls {
		t.Errorf("lazy greedy used %d calls, plain greedy %d", l.OracleCalls, g.OracleCalls)
	}
}

func TestLazyGreedyQuickEquivalence(t *testing.T) {
	// Property: on random weighted-coverage instances (submodular), lazy
	// greedy's value equals plain greedy's.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		items := 3 + r.Intn(10)
		o1 := &coverOracle{}
		for i := 0; i < n; i++ {
			var cov []int
			for it := 0; it < items; it++ {
				if r.Intn(3) == 0 {
					cov = append(cov, it)
				}
			}
			o1.covers = append(o1.covers, cov)
			o1.costs = append(o1.costs, r.Float64()*0.4)
		}
		for it := 0; it < items; it++ {
			o1.weights = append(o1.weights, 0.2+r.Float64())
		}
		o2 := &coverOracle{covers: o1.covers, weights: o1.weights, costs: o1.costs}
		g := Greedy(o1, n)
		l := LazyGreedy(o2, n)
		return math.Abs(g.Value-l.Value) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLazyGreedyEmpty(t *testing.T) {
	o := simpleOracle()
	r := LazyGreedy(o, 0)
	if len(r.Set) != 0 {
		t.Errorf("set = %v", r.Set)
	}
}

func TestBudgetedGreedyRespectsBudget(t *testing.T) {
	o := simpleOracle()
	o.budget = 1.0
	r := BudgetedGreedy(o, 3, func(i int) float64 { return o.costs[i] })
	if !o.Feasible(r.Set) {
		t.Errorf("infeasible set %v", r.Set)
	}
	if len(r.Set) == 0 {
		t.Error("selected nothing despite affordable candidates")
	}
}

func TestBudgetedGreedySingletonFallback(t *testing.T) {
	// One expensive candidate covers everything; cheap ones cover little.
	// The ratio greedy fills up on cheap ones; the singleton check must
	// rescue the better single pick.
	o := &coverOracle{
		covers:  [][]int{{0}, {1}, {0, 1, 2, 3, 4, 5, 6, 7}},
		weights: []float64{1, 1, 1, 1, 1, 1, 1, 1},
		costs:   []float64{0.1, 0.1, 1.0},
		budget:  1.0,
	}
	r := BudgetedGreedy(o, 3, func(i int) float64 { return o.costs[i] })
	// Ratio greedy takes 0 and 1 (ratio 9 each); then 2 doesn't fit
	// (0.1+0.1+1.0 > 1.0). Values: {0,1} → 2−0.2 = 1.8; {2} → 8−1 = 7.
	if !equalSets(r.Set, []int{2}) {
		t.Errorf("set = %v, want the big singleton", r.Set)
	}
	if math.Abs(r.Value-7) > 1e-12 {
		t.Errorf("value = %v", r.Value)
	}
}

func TestBudgetedGreedyZeroCostCandidates(t *testing.T) {
	o := &coverOracle{
		covers:  [][]int{{0}, {1}},
		weights: []float64{1, 1},
		costs:   []float64{0, 0},
	}
	r := BudgetedGreedy(o, 2, func(i int) float64 { return 0 })
	if len(r.Set) != 2 {
		t.Errorf("free candidates should all be taken: %v", r.Set)
	}
}

func TestBudgetedGreedyNoPositiveCandidates(t *testing.T) {
	o := &coverOracle{
		covers:  [][]int{{0}},
		weights: []float64{0.1},
		costs:   []float64{5},
	}
	r := BudgetedGreedy(o, 1, func(i int) float64 { return o.costs[i] })
	// The singleton has negative profit but bestSingleton still reports
	// it; ratio greedy takes nothing. Result must be the max of the two.
	if r.Value < -4.9-1e-9 {
		t.Errorf("value = %v", r.Value)
	}
}
