package selection

import (
	"sync"
	"testing"
)

// dumbOracle deliberately implements nothing but the Oracle interface — no
// Calls() — to prove the algorithms count evaluations themselves.
type dumbOracle struct{ vals map[int]float64 }

func (o dumbOracle) Value(set []int) float64 {
	var v float64
	for _, x := range set {
		v += o.vals[x]
	}
	return v
}

func (o dumbOracle) Feasible([]int) bool { return true }

func TestCountingWithoutOracleCounter(t *testing.T) {
	// Before the CountingOracle wrapper, a counter-less oracle reported
	// OracleCalls == 0; now every algorithm counts exactly.
	o := dumbOracle{vals: map[int]float64{0: 1, 1: 0.5, 2: 0.25}}
	for name, r := range map[string]Result{
		"greedy":     Greedy(o, 3),
		"maxsub":     MaxSub(o, 3, 0.1),
		"lazygreedy": LazyGreedy(o, 3),
	} {
		if r.OracleCalls <= 0 {
			t.Errorf("%s: OracleCalls = %d, want > 0 for a counter-less oracle", name, r.OracleCalls)
		}
	}
}

func TestCountIdempotent(t *testing.T) {
	o := dumbOracle{vals: map[int]float64{0: 1}}
	c := Count(o)
	if Count(c) != c {
		t.Error("Count of a CountingOracle should return it unchanged")
	}
	if c.Unwrap() == nil {
		t.Error("Unwrap lost the inner oracle")
	}
}

func TestCountingOracleCounts(t *testing.T) {
	o := dumbOracle{vals: map[int]float64{0: 1}}
	c := Count(o)
	c.Value(nil)
	c.Value([]int{0})
	c.Feasible([]int{0})
	if c.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", c.Calls())
	}
	if c.FeasibleCalls() != 1 {
		t.Errorf("FeasibleCalls = %d, want 1", c.FeasibleCalls())
	}
}

func TestCountingOracleConcurrent(t *testing.T) {
	o := dumbOracle{vals: map[int]float64{0: 1}}
	c := Count(o)
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Value([]int{0})
				c.Feasible([]int{0})
			}
		}()
	}
	wg.Wait()
	if c.Calls() != goroutines*perG {
		t.Errorf("Calls = %d, want %d", c.Calls(), goroutines*perG)
	}
	if c.FeasibleCalls() != goroutines*perG {
		t.Errorf("FeasibleCalls = %d, want %d", c.FeasibleCalls(), goroutines*perG)
	}
}

func TestNestedDeltaAccounting(t *testing.T) {
	// MatroidMax shares one CountingOracle with its nested local searches;
	// a pre-warmed count must not leak into the reported delta.
	o := dumbOracle{vals: map[int]float64{0: 1, 1: 0.5}}
	c := Count(o)
	for i := 0; i < 17; i++ {
		c.Value(nil) // pre-existing calls before the run
	}
	r := Greedy(c, 2)
	if r.OracleCalls >= c.Calls() {
		t.Errorf("delta accounting broken: run reported %d of %d total calls",
			r.OracleCalls, c.Calls())
	}
	if r.OracleCalls <= 0 {
		t.Errorf("OracleCalls = %d, want > 0", r.OracleCalls)
	}
}
