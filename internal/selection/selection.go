// Package selection implements the source-selection algorithms of
// Section 5 of the paper and the GRASP baseline of Dong et al. that the
// paper compares against:
//
//   - Greedy: the marginal-gain greedy of Dong et al. — iteratively add the
//     candidate that most improves profit until no addition improves.
//   - MaxSub (Algorithm 1): the Feige–Mirrokni local search for maximizing
//     a (possibly non-monotone) submodular function, with add and delete
//     moves gated by the (1+ε/n²) improvement threshold, returning the
//     better of the local optimum and its complement.
//   - MatroidLocalSearch / MatroidMax (Algorithms 3 and 2): the Lee et al.
//     local search under k matroid constraints with delete and exchange
//     moves gated by (1+ε/n⁴), run k+1 times on shrinking ground sets.
//   - GRASP(κ, r): r rounds of randomized greedy construction (uniform
//     choice among the κ best positive-marginal candidates) followed by
//     add/drop/swap hill climbing.
//
// All algorithms consume a value oracle and an optional feasibility
// predicate (the budget βc) and report the selected set, its value, the
// number of oracle calls and the wall-clock duration.
//
// Every algorithm's inner loop is a candidate sweep: evaluate each legal
// move's value, then take the best. Sweeps run through one engine
// (evaluator.sweep) that can fan evaluations across workers — see the
// Parallel option — and probe additions incrementally when the oracle
// implements IncrementalOracle. Both accelerations are exact: move values
// land at fixed indices, the argmax reduction runs sequentially in the
// historical scan order (ties resolve to the lowest-index move), and
// incremental probes are bit-identical to full evaluations, so accelerated
// runs return byte-identical Results to the plain sequential path.
package selection

import (
	"errors"
	"math"
	"time"

	"freshsource/internal/bitset"
	"freshsource/internal/matroid"
	"freshsource/internal/obs"
	"freshsource/internal/stats"
)

// ErrCanceled is the Result.Err of a run stopped by its Context option
// before reaching a local optimum. The returned Set and Value still form a
// consistent pair — Value is the oracle's exact value of Set as of the last
// fully-completed move — but the set is not a finished selection.
var ErrCanceled = errors.New("selection: run canceled")

// Oracle is the profit value oracle f and the feasibility predicate (the
// budget constraint of Definitions 3–5). Implementations must be safe for
// concurrent calls when used with the Parallel option.
type Oracle interface {
	Value(set []int) float64
	Feasible(set []int) bool
}

// Result reports one algorithm run.
type Result struct {
	// Set is the selected candidate set.
	Set []int
	// Value is f(Set).
	Value float64
	// OracleCalls is the exact number of value-oracle evaluations the run
	// performed: every algorithm counts through a CountingOracle wrapper,
	// so the count never depends on the oracle implementing one.
	// Incremental ValueAdd probes count exactly like the full Value
	// evaluations they replace, and memoization (CachedOracle) sits below
	// the counter, so the count is identical across the sequential,
	// parallel, incremental and cached paths.
	OracleCalls int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// Err is non-nil when the run did not complete: ErrCanceled when the
	// Context option's context fired. Set and Value then hold the last
	// fully-completed state (possibly the empty set) — never the partial
	// reduction of an interrupted sweep.
	Err error
}

// without returns set \ {xs...}.
func without(set []int, xs ...int) []int {
	out := make([]int, 0, len(set))
	for _, y := range set {
		drop := false
		for _, x := range xs {
			if y == x {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, y)
		}
	}
	return out
}

// with returns set ∪ {x} (assumes x ∉ set).
func with(set []int, x int) []int {
	out := make([]int, 0, len(set)+1)
	out = append(out, set...)
	return append(out, x)
}

// members builds the O(1) membership index the sweep loops test instead of
// scanning the set.
func members(n int, set []int) *bitset.Set {
	m := bitset.New(n)
	for _, x := range set {
		m.Add(x)
	}
	return m
}

// resetMembers re-syncs a membership bitset after a delete or exchange
// move replaced the set.
func resetMembers(m *bitset.Set, set []int) {
	m.Clear()
	for _, x := range set {
		m.Add(x)
	}
}

// addProber probes single-candidate additions, incrementally against
// cached set state when the oracle supports it and by full evaluation
// otherwise. The zero cost of re-deriving this per round keeps the cached
// state consistent with the current set.
type addProber struct {
	co    *CountingOracle
	state any
	incr  bool
}

// beginAdds caches add-probe state for the current set.
func beginAdds(co *CountingOracle, set []int) addProber {
	state, incr := co.tryBeginAdd(set)
	return addProber{co: co, state: state, incr: incr}
}

// value returns f(cand) where cand = set ∪ {x} for the prober's set.
func (p addProber) value(cand []int, x int) float64 {
	if p.incr {
		return p.co.valueAdd(p.state, x)
	}
	return p.co.Value(cand)
}

// grow returns s with length n, reallocating only when capacity falls
// short; contents are overwritten by the sweep.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Greedy is the greedy baseline of Dong et al.: starting from the empty
// set, repeatedly add the feasible candidate with the best positive
// marginal profit; stop when no addition improves.
func Greedy(f Oracle, n int, opts ...Option) Result {
	co, rt := traceRun(f, "greedy")
	adds := obs.Counter("selection.greedy.adds")
	ev := newEvaluator(opts)
	defer ev.close()
	var set []int
	member := bitset.New(n)
	cur := co.Value(set)
	vals := make([]float64, n)
	ok := make([]bool, n)
	for {
		probe := beginAdds(co, set)
		ev.sweep(n, func(x int) {
			ok[x] = false
			if member.Contains(x) {
				return
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				return
			}
			vals[x] = probe.value(cand, x)
			ok[x] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestIdx, bestVal := -1, cur
		for x := 0; x < n; x++ {
			if ok[x] && vals[x] > bestVal {
				bestIdx, bestVal = x, vals[x]
			}
		}
		if bestIdx < 0 {
			break
		}
		set = with(set, bestIdx)
		member.Add(bestIdx)
		cur = bestVal
		adds.Inc()
	}
	return rt.finish(set, cur)
}

// improves implements the multiplicative improvement threshold
// f(new) > (1 + ε/d)·f(cur) of Algorithms 1 and 3, made robust to
// non-positive values: the required improvement is ε/d of |f(cur)|, with a
// tiny absolute floor to guarantee termination.
func improves(newV, curV, eps, denom float64) bool {
	delta := (eps / denom) * math.Abs(curV)
	if delta < 1e-12 {
		delta = 1e-12
	}
	return newV > curV+delta
}

// MaxSub is Algorithm 1 of the paper (Feige & Mirrokni local search). eps
// is the approximation slack ε; the thresholds use ε/n².
func MaxSub(f Oracle, n int, eps float64, opts ...Option) Result {
	co, rt := traceRun(f, "maxsub")
	moves := obs.Counter("selection.maxsub.moves")
	if n == 0 {
		return rt.finish(nil, co.Value(nil))
	}
	ev := newEvaluator(opts)
	defer ev.close()
	denom := float64(n) * float64(n)

	// Ln. 3: best feasible singleton.
	set, cur := bestSingleton(co, n, ev)
	if ev.canceled() {
		return rt.finishErr(nil, co.Value(nil), ErrCanceled)
	}
	if set == nil {
		return rt.finish(nil, co.Value(nil))
	}
	member := members(n, set)

	// Ln. 4–10: local add/delete moves.
	vals := make([]float64, n)
	ok := make([]bool, n)
	cands := make([][]int, n)
	for {
		moved := false
		// Addition sweep, optionally over a sampled neighborhood (the
		// Sampled option): indices are drawn before the sweep fans out and
		// the reduction scans them in ascending order, so the sampled path
		// keeps the deterministic lowest-index tie resolution.
		addIdx := ev.sampleIdx(n)
		probe := beginAdds(co, set)
		ev.sweepOn(n, addIdx, func(x int) {
			ok[x] = false
			if member.Contains(x) {
				return
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				return
			}
			vals[x] = probe.value(cand, x)
			ok[x] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestIdx, bestVal := -1, cur
		reduceAdd := func(x int) {
			if ok[x] && improves(vals[x], cur, eps, denom) && vals[x] > bestVal {
				bestIdx, bestVal = x, vals[x]
			}
		}
		if addIdx == nil {
			for x := 0; x < n; x++ {
				reduceAdd(x)
			}
		} else {
			for _, x := range addIdx {
				reduceAdd(x)
			}
		}
		if bestIdx >= 0 {
			set, cur = with(set, bestIdx), bestVal
			member.Add(bestIdx)
			moved = true
			moves.Inc()
		}
		// Deletion sweep (the sequential path never feasibility-gated
		// deletions; shrinking a feasible set keeps an additive budget).
		m := len(set)
		ev.sweep(m, func(i int) {
			cand := without(set, set[i])
			cands[i] = cand
			vals[i] = co.Value(cand)
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestI := -1
		bestVal = cur
		for i := 0; i < m; i++ {
			if improves(vals[i], cur, eps, denom) && vals[i] > bestVal {
				bestI, bestVal = i, vals[i]
			}
		}
		if bestI >= 0 {
			member.Remove(set[bestI])
			set, cur = cands[bestI], bestVal
			moved = true
			moves.Inc()
		}
		if !moved {
			break
		}
	}

	// Ln. 11: compare with the complement.
	comp := make([]int, 0, n-len(set))
	for x := 0; x < n; x++ {
		if !member.Contains(x) {
			comp = append(comp, x)
		}
	}
	if co.Feasible(comp) {
		if v := co.Value(comp); v > cur {
			set, cur = comp, v
		}
	}
	return rt.finish(set, cur)
}

// bestSingleton sweeps the feasible singletons and returns the best.
func bestSingleton(co *CountingOracle, n int, ev evaluator) ([]int, float64) {
	vals := make([]float64, n)
	ok := make([]bool, n)
	probe := beginAdds(co, nil)
	ev.sweep(n, func(x int) {
		ok[x] = false
		cand := []int{x}
		if !co.Feasible(cand) {
			return
		}
		vals[x] = probe.value(cand, x)
		ok[x] = true
	})
	bestIdx, bestVal := -1, math.Inf(-1)
	for x := 0; x < n; x++ {
		if ok[x] && vals[x] > bestVal {
			bestIdx, bestVal = x, vals[x]
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	return []int{bestIdx}, bestVal
}

// MatroidLocalSearch is Algorithm 3: local search over ground (a subset of
// {0,…,n-1}) under the intersection of the given matroids, with delete and
// exchange moves gated by (1+ε/n⁴).
func MatroidLocalSearch(f Oracle, ground []int, ms []matroid.Matroid, eps float64, opts ...Option) Result {
	co, rt := traceRun(f, "matroidlocal")
	moves := obs.Counter("selection.matroidlocal.moves")
	if len(ground) == 0 {
		return rt.finish(nil, co.Value(nil))
	}
	ev := newEvaluator(opts)
	defer ev.close()
	n := 0
	for _, m := range ms {
		if m.N() > n {
			n = m.N()
		}
	}
	if n == 0 {
		n = len(ground)
	}
	denom := float64(n) * float64(n) * float64(n) * float64(n)

	// The membership universe must span the ground elements even when no
	// matroid bounds them.
	ub := n
	for _, x := range ground {
		if x+1 > ub {
			ub = x + 1
		}
	}
	member := bitset.New(ub)

	// Ln. 3: best feasible singleton within the ground set.
	g := len(ground)
	vals := make([]float64, g)
	ok := make([]bool, g)
	cands := make([][]int, g)
	probe := beginAdds(co, nil)
	ev.sweep(g, func(i int) {
		ok[i] = false
		cand := []int{ground[i]}
		if !matroid.AllIndependent(ms, cand) || !co.Feasible(cand) {
			return
		}
		vals[i] = probe.value(cand, ground[i])
		ok[i] = true
	})
	if ev.canceled() {
		return rt.finishErr(nil, co.Value(nil), ErrCanceled)
	}
	var set []int
	cur := math.Inf(-1)
	for i := 0; i < g; i++ {
		if ok[i] && vals[i] > cur {
			set, cur = []int{ground[i]}, vals[i]
		}
	}
	if set == nil {
		return rt.finish(nil, co.Value(nil))
	}
	member.Add(set[0])

	for {
		moved := false

		// Ln. 5–7: delete operation.
		m := len(set)
		ev.sweep(m, func(i int) {
			cand := without(set, set[i])
			cands[i] = cand
			vals[i] = co.Value(cand)
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestI, bestVal := -1, cur
		for i := 0; i < m; i++ {
			if improves(vals[i], cur, eps, denom) && vals[i] > bestVal {
				bestI, bestVal = i, vals[i]
			}
		}
		if bestI >= 0 {
			set, cur = cands[bestI], bestVal
			resetMembers(member, set)
			moved = true
			moves.Inc()
		}

		// Ln. 8–10: exchange operation — bring in d, removing at most one
		// conflicting element per matroid. Optionally over a sampled
		// neighborhood (the Sampled option), drawn sequentially and reduced
		// in ascending order for determinism at any worker count.
		exIdx := ev.sampleIdx(g)
		ev.sweepOn(g, exIdx, func(i int) {
			ok[i] = false
			d := ground[i]
			if member.Contains(d) {
				return
			}
			var removals []int
			admissible := true
			for _, m := range ms {
				if m.CanAdd(without(set, removals...), d) {
					continue
				}
				conf := m.Conflicts(set, d)
				if conf == nil {
					admissible = false
					break
				}
				removals = append(removals, conf...)
			}
			if !admissible {
				return
			}
			cand := with(without(set, removals...), d)
			if !matroid.AllIndependent(ms, cand) || !co.Feasible(cand) {
				return
			}
			cands[i] = cand
			vals[i] = co.Value(cand)
			ok[i] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestI, bestVal = -1, cur
		reduceEx := func(i int) {
			if ok[i] && improves(vals[i], cur, eps, denom) && vals[i] > bestVal {
				bestI, bestVal = i, vals[i]
			}
		}
		if exIdx == nil {
			for i := 0; i < g; i++ {
				reduceEx(i)
			}
		} else {
			for _, i := range exIdx {
				reduceEx(i)
			}
		}
		if bestI >= 0 {
			set, cur = cands[bestI], bestVal
			resetMembers(member, set)
			moved = true
			moves.Inc()
		}

		if !moved {
			break
		}
	}
	return rt.finish(set, cur)
}

// MatroidMax is Algorithm 2: run the local search k+1 times on shrinking
// ground sets (removing each round's selection) and return the best round.
func MatroidMax(f Oracle, n int, ms []matroid.Matroid, eps float64, opts ...Option) Result {
	co, rt := traceRun(f, "matroidmax")
	ground := make([]int, n)
	for i := range ground {
		ground[i] = i
	}
	k := len(ms)
	var best Result
	best.Value = math.Inf(-1)
	for i := 0; i <= k; i++ {
		if len(ground) == 0 {
			break
		}
		// The nested run shares co, so rt's delta accounting covers it.
		r := MatroidLocalSearch(co, ground, ms, eps, opts...)
		if r.Value > best.Value {
			best = r
		}
		if r.Err != nil {
			if math.IsInf(best.Value, -1) {
				best = Result{Value: co.Value(nil)}
			}
			return rt.finishErr(best.Set, best.Value, r.Err)
		}
		ground = without(ground, r.Set...)
	}
	if math.IsInf(best.Value, -1) {
		best = Result{Value: co.Value(nil)}
	}
	return rt.finish(best.Set, best.Value)
}

// GRASP is the randomized multi-start of Dong et al.: r rounds of greedy
// randomized construction — at each step choose uniformly among the κ
// candidates with the largest positive marginal profit — followed by
// add/drop/swap hill climbing; the best round wins. (κ=1, r=1) degenerates
// to plain hill climbing.
//
// Randomization is unaffected by the Parallel option: the rng draws happen
// in the sequential reduction, and the candidate lists it draws from are
// assembled in index order, so a seeded run selects identically at any
// worker count.
func GRASP(f Oracle, n int, kappa, r int, rng *stats.RNG, opts ...Option) Result {
	co, rt := traceRun(f, "grasp")
	restarts := obs.Counter("selection.grasp.restarts")
	ev := newEvaluator(opts)
	defer ev.close()
	best := Result{Value: math.Inf(-1)}
	for it := 0; it < r; it++ {
		restarts.Inc()
		set, cur := graspConstruct(co, n, kappa, rng, ev)
		if !ev.canceled() {
			set, cur = hillClimb(co, n, set, cur, ev)
		}
		// A canceled round still yields a consistent (set, exact value)
		// pair — its last completed move — so it may enter the best.
		if cur > best.Value {
			best.Set = append([]int(nil), set...)
			best.Value = cur
		}
		if ev.canceled() {
			return rt.finishErr(best.Set, best.Value, ErrCanceled)
		}
	}
	if math.IsInf(best.Value, -1) {
		best = Result{Value: co.Value(nil)}
	}
	return rt.finish(best.Set, best.Value)
}

func graspConstruct(co *CountingOracle, n, kappa int, rng *stats.RNG, ev evaluator) ([]int, float64) {
	var set []int
	member := bitset.New(n)
	cur := co.Value(set)
	vals := make([]float64, n)
	ok := make([]bool, n)
	type cand struct {
		x int
		v float64
	}
	var cands []cand
	for {
		probe := beginAdds(co, set)
		ev.sweep(n, func(x int) {
			ok[x] = false
			if member.Contains(x) {
				return
			}
			s := with(set, x)
			if !co.Feasible(s) {
				return
			}
			vals[x] = probe.value(s, x)
			ok[x] = true
		})
		if ev.canceled() {
			return set, cur
		}
		cands = cands[:0]
		for x := 0; x < n; x++ {
			if ok[x] && vals[x] > cur {
				cands = append(cands, cand{x, vals[x]})
			}
		}
		if len(cands) == 0 {
			return set, cur
		}
		// Restricted candidate list: the κ best by value (ties keep index
		// order, so the draw below is deterministic for a seeded rng).
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].v > cands[i].v {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		rcl := cands
		if len(rcl) > kappa {
			rcl = rcl[:kappa]
		}
		pick := rcl[rng.Intn(len(rcl))]
		set = with(set, pick.x)
		member.Add(pick.x)
		cur = pick.v
	}
}

// hillClimb applies best-improvement add, drop and swap moves until a local
// optimum. Each round enumerates its legal moves in the historical scan
// order (adds, then drops, then swaps), sweeps their values, and takes the
// best strict improvement.
func hillClimb(co *CountingOracle, n int, set []int, cur float64, ev evaluator) ([]int, float64) {
	movesCtr := obs.Counter("selection.hillclimb.moves")
	member := members(n, set)
	// A move drops set[di] (di < 0: pure add) and adds candidate add
	// (add < 0: pure drop).
	type mv struct{ di, add int }
	var (
		moves      []mv
		vals       []float64
		ok         []bool
		cands      [][]int
		bases      [][]int
		dropProbes []addProber
	)
	for {
		moves = moves[:0]
		for x := 0; x < n; x++ {
			if !member.Contains(x) {
				moves = append(moves, mv{-1, x})
			}
		}
		for i := range set {
			moves = append(moves, mv{i, -1})
		}
		for i := range set {
			for y := 0; y < n; y++ {
				if !member.Contains(y) {
					moves = append(moves, mv{i, y})
				}
			}
		}
		bases = bases[:0]
		for i := range set {
			bases = append(bases, without(set, set[i]))
		}
		// Swap moves sharing a dropped element probe additions against that
		// base's cached state: one state build per base serves every swap
		// target, turning the |set|·(n−|set|) swap evaluations incremental.
		dropProbes = dropProbes[:0]
		for i := range bases {
			dropProbes = append(dropProbes, beginAdds(co, bases[i]))
		}

		m := len(moves)
		vals = grow(vals, m)
		ok = grow(ok, m)
		cands = grow(cands, m)
		probe := beginAdds(co, set)
		ev.sweep(m, func(k int) {
			ok[k] = false
			w := moves[k]
			var cand []int
			switch {
			case w.di < 0: // add
				cand = with(set, w.add)
				if !co.Feasible(cand) {
					return
				}
				vals[k] = probe.value(cand, w.add)
			case w.add < 0: // drop (never feasibility-gated, as sequentially)
				cand = bases[w.di]
				vals[k] = co.Value(cand)
			default: // swap
				cand = with(bases[w.di], w.add)
				if !co.Feasible(cand) {
					return
				}
				vals[k] = dropProbes[w.di].value(cand, w.add)
			}
			cands[k] = cand
			ok[k] = true
		})
		if ev.canceled() {
			return set, cur
		}
		bestK, bestVal := -1, cur
		for k := 0; k < m; k++ {
			if ok[k] && vals[k] > bestVal {
				bestK, bestVal = k, vals[k]
			}
		}
		if bestK < 0 {
			return set, cur
		}
		set, cur = cands[bestK], bestVal
		resetMembers(member, set)
		movesCtr.Inc()
	}
}
