// Package selection implements the source-selection algorithms of
// Section 5 of the paper and the GRASP baseline of Dong et al. that the
// paper compares against:
//
//   - Greedy: the marginal-gain greedy of Dong et al. — iteratively add the
//     candidate that most improves profit until no addition improves.
//   - MaxSub (Algorithm 1): the Feige–Mirrokni local search for maximizing
//     a (possibly non-monotone) submodular function, with add and delete
//     moves gated by the (1+ε/n²) improvement threshold, returning the
//     better of the local optimum and its complement.
//   - MatroidLocalSearch / MatroidMax (Algorithms 3 and 2): the Lee et al.
//     local search under k matroid constraints with delete and exchange
//     moves gated by (1+ε/n⁴), run k+1 times on shrinking ground sets.
//   - GRASP(κ, r): r rounds of randomized greedy construction (uniform
//     choice among the κ best positive-marginal candidates) followed by
//     add/drop/swap hill climbing.
//
// All algorithms consume a value oracle and an optional feasibility
// predicate (the budget βc) and report the selected set, its value, the
// number of oracle calls and the wall-clock duration.
package selection

import (
	"math"
	"time"

	"freshsource/internal/matroid"
	"freshsource/internal/obs"
	"freshsource/internal/stats"
)

// Oracle is the profit value oracle f and the feasibility predicate (the
// budget constraint of Definitions 3–5).
type Oracle interface {
	Value(set []int) float64
	Feasible(set []int) bool
}

// Result reports one algorithm run.
type Result struct {
	// Set is the selected candidate set.
	Set []int
	// Value is f(Set).
	Value float64
	// OracleCalls is the exact number of value-oracle evaluations the run
	// performed: every algorithm counts through a CountingOracle wrapper,
	// so the count never depends on the oracle implementing one.
	OracleCalls int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// contains reports membership.
func contains(set []int, x int) bool {
	for _, y := range set {
		if y == x {
			return true
		}
	}
	return false
}

// without returns set \ {xs...}.
func without(set []int, xs ...int) []int {
	out := make([]int, 0, len(set))
	for _, y := range set {
		drop := false
		for _, x := range xs {
			if y == x {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, y)
		}
	}
	return out
}

// with returns set ∪ {x} (assumes x ∉ set).
func with(set []int, x int) []int {
	out := make([]int, 0, len(set)+1)
	out = append(out, set...)
	return append(out, x)
}

// Greedy is the greedy baseline of Dong et al.: starting from the empty
// set, repeatedly add the feasible candidate with the best positive
// marginal profit; stop when no addition improves.
func Greedy(f Oracle, n int) Result {
	co, rt := traceRun(f, "greedy")
	adds := obs.Counter("selection.greedy.adds")
	var set []int
	cur := co.Value(set)
	for {
		bestIdx, bestVal := -1, cur
		for x := 0; x < n; x++ {
			if contains(set, x) {
				continue
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				continue
			}
			if v := co.Value(cand); v > bestVal {
				bestIdx, bestVal = x, v
			}
		}
		if bestIdx < 0 {
			break
		}
		set = with(set, bestIdx)
		cur = bestVal
		adds.Inc()
	}
	return rt.finish(set, cur)
}

// improves implements the multiplicative improvement threshold
// f(new) > (1 + ε/d)·f(cur) of Algorithms 1 and 3, made robust to
// non-positive values: the required improvement is ε/d of |f(cur)|, with a
// tiny absolute floor to guarantee termination.
func improves(newV, curV, eps, denom float64) bool {
	delta := (eps / denom) * math.Abs(curV)
	if delta < 1e-12 {
		delta = 1e-12
	}
	return newV > curV+delta
}

// MaxSub is Algorithm 1 of the paper (Feige & Mirrokni local search). eps
// is the approximation slack ε; the thresholds use ε/n².
func MaxSub(f Oracle, n int, eps float64) Result {
	co, rt := traceRun(f, "maxsub")
	moves := obs.Counter("selection.maxsub.moves")
	if n == 0 {
		return rt.finish(nil, co.Value(nil))
	}
	denom := float64(n) * float64(n)

	// Ln. 3: best feasible singleton.
	set, cur := bestSingleton(co, n)
	if set == nil {
		return rt.finish(nil, co.Value(nil))
	}

	// Ln. 4–10: local add/delete moves.
	for {
		moved := false
		// Addition.
		bestIdx, bestVal := -1, cur
		for x := 0; x < n; x++ {
			if contains(set, x) {
				continue
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				continue
			}
			if v := co.Value(cand); improves(v, cur, eps, denom) && v > bestVal {
				bestIdx, bestVal = x, v
			}
		}
		if bestIdx >= 0 {
			set, cur = with(set, bestIdx), bestVal
			moved = true
			moves.Inc()
		}
		// Deletion.
		bestIdx, bestVal = -1, cur
		for _, x := range set {
			cand := without(set, x)
			if v := co.Value(cand); improves(v, cur, eps, denom) && v > bestVal {
				bestIdx, bestVal = x, v
			}
		}
		if bestIdx >= 0 {
			set, cur = without(set, bestIdx), bestVal
			moved = true
			moves.Inc()
		}
		if !moved {
			break
		}
	}

	// Ln. 11: compare with the complement.
	comp := make([]int, 0, n-len(set))
	for x := 0; x < n; x++ {
		if !contains(set, x) {
			comp = append(comp, x)
		}
	}
	if co.Feasible(comp) {
		if v := co.Value(comp); v > cur {
			set, cur = comp, v
		}
	}
	return rt.finish(set, cur)
}

func bestSingleton(f Oracle, n int) ([]int, float64) {
	bestIdx, bestVal := -1, math.Inf(-1)
	for x := 0; x < n; x++ {
		cand := []int{x}
		if !f.Feasible(cand) {
			continue
		}
		if v := f.Value(cand); v > bestVal {
			bestIdx, bestVal = x, v
		}
	}
	if bestIdx < 0 {
		return nil, 0
	}
	return []int{bestIdx}, bestVal
}

// MatroidLocalSearch is Algorithm 3: local search over ground (a subset of
// {0,…,n-1}) under the intersection of the given matroids, with delete and
// exchange moves gated by (1+ε/n⁴).
func MatroidLocalSearch(f Oracle, ground []int, ms []matroid.Matroid, eps float64) Result {
	co, rt := traceRun(f, "matroidlocal")
	f = co
	moves := obs.Counter("selection.matroidlocal.moves")
	if len(ground) == 0 {
		return rt.finish(nil, f.Value(nil))
	}
	n := 0
	for _, m := range ms {
		if m.N() > n {
			n = m.N()
		}
	}
	if n == 0 {
		n = len(ground)
	}
	denom := float64(n) * float64(n) * float64(n) * float64(n)

	// Ln. 3: best feasible singleton within the ground set.
	var set []int
	cur := math.Inf(-1)
	for _, x := range ground {
		cand := []int{x}
		if !matroid.AllIndependent(ms, cand) || !f.Feasible(cand) {
			continue
		}
		if v := f.Value(cand); v > cur {
			set, cur = cand, v
		}
	}
	if set == nil {
		return rt.finish(nil, f.Value(nil))
	}

	for {
		moved := false

		// Ln. 5–7: delete operation.
		bestSet, bestVal := ([]int)(nil), cur
		for _, x := range set {
			cand := without(set, x)
			if v := f.Value(cand); improves(v, cur, eps, denom) && v > bestVal {
				bestSet, bestVal = cand, v
			}
		}
		if bestSet != nil {
			set, cur = bestSet, bestVal
			moved = true
			moves.Inc()
		}

		// Ln. 8–10: exchange operation — bring in d, removing at most one
		// conflicting element per matroid.
		bestSet, bestVal = nil, cur
		for _, d := range ground {
			if contains(set, d) {
				continue
			}
			var removals []int
			ok := true
			for _, m := range ms {
				if m.CanAdd(without(set, removals...), d) {
					continue
				}
				conf := m.Conflicts(set, d)
				if conf == nil {
					ok = false
					break
				}
				removals = append(removals, conf...)
			}
			if !ok {
				continue
			}
			cand := with(without(set, removals...), d)
			if !matroid.AllIndependent(ms, cand) || !f.Feasible(cand) {
				continue
			}
			if v := f.Value(cand); improves(v, cur, eps, denom) && v > bestVal {
				bestSet, bestVal = cand, v
			}
		}
		if bestSet != nil {
			set, cur = bestSet, bestVal
			moved = true
			moves.Inc()
		}

		if !moved {
			break
		}
	}
	return rt.finish(set, cur)
}

// MatroidMax is Algorithm 2: run the local search k+1 times on shrinking
// ground sets (removing each round's selection) and return the best round.
func MatroidMax(f Oracle, n int, ms []matroid.Matroid, eps float64) Result {
	co, rt := traceRun(f, "matroidmax")
	ground := make([]int, n)
	for i := range ground {
		ground[i] = i
	}
	k := len(ms)
	var best Result
	best.Value = math.Inf(-1)
	for i := 0; i <= k; i++ {
		if len(ground) == 0 {
			break
		}
		// The nested run shares co, so rt's delta accounting covers it.
		r := MatroidLocalSearch(co, ground, ms, eps)
		if r.Value > best.Value {
			best = r
		}
		ground = without(ground, r.Set...)
	}
	if math.IsInf(best.Value, -1) {
		best = Result{Value: co.Value(nil)}
	}
	return rt.finish(best.Set, best.Value)
}

// GRASP is the randomized multi-start of Dong et al.: r rounds of greedy
// randomized construction — at each step choose uniformly among the κ
// candidates with the largest positive marginal profit — followed by
// add/drop/swap hill climbing; the best round wins. (κ=1, r=1) degenerates
// to plain hill climbing.
func GRASP(f Oracle, n int, kappa, r int, rng *stats.RNG) Result {
	co, rt := traceRun(f, "grasp")
	restarts := obs.Counter("selection.grasp.restarts")
	best := Result{Value: math.Inf(-1)}
	for it := 0; it < r; it++ {
		restarts.Inc()
		set, cur := graspConstruct(co, n, kappa, rng)
		set, cur = hillClimb(co, n, set, cur)
		if cur > best.Value {
			best.Set = append([]int(nil), set...)
			best.Value = cur
		}
	}
	if math.IsInf(best.Value, -1) {
		best = Result{Value: co.Value(nil)}
	}
	return rt.finish(best.Set, best.Value)
}

func graspConstruct(f Oracle, n, kappa int, rng *stats.RNG) ([]int, float64) {
	var set []int
	cur := f.Value(set)
	for {
		type cand struct {
			x int
			v float64
		}
		var cands []cand
		for x := 0; x < n; x++ {
			if contains(set, x) {
				continue
			}
			s := with(set, x)
			if !f.Feasible(s) {
				continue
			}
			if v := f.Value(s); v > cur {
				cands = append(cands, cand{x, v})
			}
		}
		if len(cands) == 0 {
			return set, cur
		}
		// Restricted candidate list: the κ best by value.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].v > cands[i].v {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		if len(cands) > kappa {
			cands = cands[:kappa]
		}
		pick := cands[rng.Intn(len(cands))]
		set = with(set, pick.x)
		cur = pick.v
	}
}

// hillClimb applies best-improvement add, drop and swap moves until a local
// optimum.
func hillClimb(f Oracle, n int, set []int, cur float64) ([]int, float64) {
	moves := obs.Counter("selection.hillclimb.moves")
	for {
		bestSet, bestVal := ([]int)(nil), cur
		// Add.
		for x := 0; x < n; x++ {
			if contains(set, x) {
				continue
			}
			cand := with(set, x)
			if !f.Feasible(cand) {
				continue
			}
			if v := f.Value(cand); v > bestVal {
				bestSet, bestVal = cand, v
			}
		}
		// Drop.
		for _, x := range set {
			cand := without(set, x)
			if v := f.Value(cand); v > bestVal {
				bestSet, bestVal = cand, v
			}
		}
		// Swap.
		for _, x := range set {
			base := without(set, x)
			for y := 0; y < n; y++ {
				if contains(set, y) {
					continue
				}
				cand := with(base, y)
				if !f.Feasible(cand) {
					continue
				}
				if v := f.Value(cand); v > bestVal {
					bestSet, bestVal = cand, v
				}
			}
		}
		if bestSet == nil {
			return set, cur
		}
		set, cur = bestSet, bestVal
		moves.Inc()
	}
}
