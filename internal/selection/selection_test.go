package selection

import (
	"math"
	"sort"
	"testing"

	"freshsource/internal/matroid"
	"freshsource/internal/stats"
)

// coverOracle is a weighted-coverage test oracle: each candidate covers a
// set of items with given weights, f(S) = Σ weight(covered items) − Σ cost.
// Weighted coverage is monotone submodular, so optima are easy to reason
// about.
type coverOracle struct {
	covers  [][]int
	weights []float64
	costs   []float64
	budget  float64
	calls   int
}

func (o *coverOracle) Value(set []int) float64 {
	o.calls++
	covered := map[int]bool{}
	var cost float64
	for _, c := range set {
		for _, it := range o.covers[c] {
			covered[it] = true
		}
		cost += o.costs[c]
	}
	var g float64
	for it := range covered {
		g += o.weights[it]
	}
	return g - cost
}

func (o *coverOracle) Feasible(set []int) bool {
	if o.budget <= 0 {
		return true
	}
	var cost float64
	for _, c := range set {
		cost += o.costs[c]
	}
	return cost <= o.budget
}

func (o *coverOracle) Calls() int { return o.calls }

func sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalSets(a, b []int) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// simpleOracle: 3 candidates, candidate 2 covers everything but costs a lot.
func simpleOracle() *coverOracle {
	return &coverOracle{
		covers:  [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}},
		weights: []float64{1, 1, 1, 1},
		costs:   []float64{0.5, 0.5, 3.5},
	}
}

func TestGreedyPicksOptimal(t *testing.T) {
	o := simpleOracle()
	r := Greedy(o, 3)
	// Best: {0,1} with value 4-1 = 3; candidate 2 alone gives 0.5.
	if !equalSets(r.Set, []int{0, 1}) {
		t.Errorf("Greedy set = %v", r.Set)
	}
	if math.Abs(r.Value-3) > 1e-12 {
		t.Errorf("Greedy value = %v", r.Value)
	}
	if r.OracleCalls <= 0 {
		t.Error("oracle calls not counted")
	}
	if r.Duration < 0 {
		t.Error("negative duration")
	}
}

func TestGreedyRespectsBudget(t *testing.T) {
	o := simpleOracle()
	o.budget = 0.5 // only one cheap candidate fits
	r := Greedy(o, 3)
	if len(r.Set) != 1 {
		t.Errorf("set = %v", r.Set)
	}
	if !o.Feasible(r.Set) {
		t.Error("infeasible selection")
	}
}

func TestGreedyEmptyGround(t *testing.T) {
	o := simpleOracle()
	r := Greedy(o, 0)
	if len(r.Set) != 0 {
		t.Errorf("set = %v", r.Set)
	}
}

// greedyTrap: an instance where Greedy gets stuck at a local optimum but a
// delete move (MaxSub) escapes. Candidate 0 overlaps both 1 and 2.
func greedyTrap() *coverOracle {
	return &coverOracle{
		covers:  [][]int{{0, 1, 2, 3}, {0, 1, 4, 5}, {2, 3, 6, 7}},
		weights: []float64{1, 1, 1, 1, 1, 1, 1, 1},
		costs:   []float64{1.0, 1.2, 1.2},
	}
}

func TestMaxSubBeatsGreedyOnTrap(t *testing.T) {
	// Greedy: picks 0 first (4−1=3), then adding 1 (6−2.2=3.8), then 2
	// (8−3.4=4.6). All three: value 4.6. Optimal is {1,2}: 8−2.4=5.6.
	g := Greedy(greedyTrap(), 3)
	m := MaxSub(greedyTrap(), 3, 0.1)
	if m.Value < 5.6-1e-9 {
		t.Errorf("MaxSub value = %v, want 5.6 (set %v)", m.Value, m.Set)
	}
	if g.Value >= m.Value {
		t.Errorf("trap did not trap Greedy: greedy %v, maxsub %v", g.Value, m.Value)
	}
	if !equalSets(m.Set, []int{1, 2}) {
		t.Errorf("MaxSub set = %v", m.Set)
	}
}

func TestMaxSubEmptyGround(t *testing.T) {
	o := simpleOracle()
	r := MaxSub(o, 0, 0.1)
	if len(r.Set) != 0 {
		t.Errorf("set = %v", r.Set)
	}
}

func TestMaxSubComplementConsidered(t *testing.T) {
	// An oracle where the complement of the local optimum wins: f counts
	// items covered only by the "other" candidates. Construct: candidate 0
	// great alone; {1,2} jointly much better but each alone is weak and the
	// threshold blocks single steps.
	o := &coverOracle{
		covers:  [][]int{{0}, {1}, {2}},
		weights: []float64{1, 0.9, 0.9},
		costs:   []float64{0, 0, 0},
	}
	r := MaxSub(o, 3, 0.5)
	// With everything free, adds keep improving: all three selected.
	if len(r.Set) != 3 {
		t.Errorf("set = %v", r.Set)
	}
}

func TestMaxSubFeasibility(t *testing.T) {
	o := simpleOracle()
	o.budget = 1.0
	r := MaxSub(o, 3, 0.1)
	if !o.Feasible(r.Set) {
		t.Errorf("infeasible MaxSub set %v", r.Set)
	}
}

func TestMatroidLocalSearchOnePerClass(t *testing.T) {
	// Two sources, two "frequency versions" each. Version quality differs;
	// constraint: one version per source.
	// Candidates: 0=s0-full, 1=s0-half, 2=s1-full, 3=s1-half.
	o := &coverOracle{
		covers:  [][]int{{0, 1, 2}, {0, 1}, {3, 4, 5}, {3, 4}},
		weights: []float64{1, 1, 1, 1, 1, 1},
		costs:   []float64{1.1, 0.4, 1.1, 0.4},
	}
	p, err := matroid.OnePerClass([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ms := []matroid.Matroid{p}
	ground := []int{0, 1, 2, 3}
	r := MatroidLocalSearch(o, ground, ms, 0.1)
	if !p.Independent(r.Set) {
		t.Fatalf("solution %v violates the matroid", r.Set)
	}
	// Optimal respecting the constraint: {1, 3} = 4 − 0.8 = 3.2
	// vs {0,2} = 6 − 2.2 = 3.8. So {0,2} wins.
	if !equalSets(r.Set, []int{0, 2}) {
		t.Errorf("set = %v (value %v)", r.Set, r.Value)
	}
}

func TestMatroidLocalSearchExchanges(t *testing.T) {
	// Force an exchange: start lands on the cheap version, swap to the
	// expensive one must happen via exchange (class full).
	o := &coverOracle{
		covers:  [][]int{{0}, {0, 1, 2, 3}},
		weights: []float64{1, 1, 1, 1},
		costs:   []float64{0.1, 0.5},
	}
	p, _ := matroid.OnePerClass([]int{0, 0})
	r := MatroidLocalSearch(o, []int{0, 1}, []matroid.Matroid{p}, 0.1)
	if !equalSets(r.Set, []int{1}) {
		t.Errorf("set = %v, want {1} via exchange", r.Set)
	}
}

func TestMatroidMax(t *testing.T) {
	o := &coverOracle{
		covers:  [][]int{{0, 1}, {0}, {2, 3}, {2}},
		weights: []float64{1, 1, 1, 1},
		costs:   []float64{0.2, 0.1, 0.2, 0.1},
	}
	p, _ := matroid.OnePerClass([]int{0, 0, 1, 1})
	r := MatroidMax(o, 4, []matroid.Matroid{p}, 0.1)
	if !p.Independent(r.Set) {
		t.Fatalf("solution %v violates matroid", r.Set)
	}
	if !equalSets(r.Set, []int{0, 2}) {
		t.Errorf("set = %v, want {0,2}", r.Set)
	}
	if math.Abs(r.Value-3.6) > 1e-9 {
		t.Errorf("value = %v", r.Value)
	}
}

func TestMatroidEmptyGround(t *testing.T) {
	o := simpleOracle()
	p, _ := matroid.OnePerClass([]int{0, 0, 1})
	r := MatroidLocalSearch(o, nil, []matroid.Matroid{p}, 0.1)
	if len(r.Set) != 0 {
		t.Errorf("set = %v", r.Set)
	}
}

func TestGRASPFindsOptimumOnTrap(t *testing.T) {
	rng := stats.NewRNG(7)
	r := GRASP(greedyTrap(), 3, 2, 20, rng)
	if r.Value < 5.6-1e-9 {
		t.Errorf("GRASP value = %v (set %v), want 5.6", r.Value, r.Set)
	}
}

func TestGRASPHillClimbDegenerate(t *testing.T) {
	// (κ=1, r=1) is deterministic hill climbing; on the simple instance it
	// must find {0,1} via swaps even after greedy construction.
	rng := stats.NewRNG(1)
	r := GRASP(simpleOracle(), 3, 1, 1, rng)
	if !equalSets(r.Set, []int{0, 1}) {
		t.Errorf("set = %v", r.Set)
	}
}

func TestGRASPRespectsBudget(t *testing.T) {
	o := simpleOracle()
	o.budget = 1.0
	r := GRASP(o, 3, 2, 10, stats.NewRNG(3))
	if !o.Feasible(r.Set) {
		t.Errorf("infeasible GRASP set %v", r.Set)
	}
}

func TestOracleCallAccountingMonotonic(t *testing.T) {
	o := simpleOracle()
	r1 := Greedy(o, 3)
	r2 := MaxSub(o, 3, 0.1)
	if r1.OracleCalls <= 0 || r2.OracleCalls <= 0 {
		t.Error("call accounting broken")
	}
	// MaxSub explores at least as much as Greedy on this instance.
	if r2.OracleCalls < len(r2.Set) {
		t.Error("implausibly few calls")
	}
}

func TestAllAlgorithmsAgreeOnTrivial(t *testing.T) {
	// One candidate, positive profit: everyone must select it.
	o := &coverOracle{covers: [][]int{{0}}, weights: []float64{1}, costs: []float64{0.1}}
	p, _ := matroid.OnePerClass([]int{0})
	ms := []matroid.Matroid{p}
	for name, r := range map[string]Result{
		"greedy":  Greedy(o, 1),
		"maxsub":  MaxSub(o, 1, 0.1),
		"matroid": MatroidMax(o, 1, ms, 0.1),
		"grasp":   GRASP(o, 1, 1, 2, stats.NewRNG(5)),
	} {
		if !equalSets(r.Set, []int{0}) {
			t.Errorf("%s selected %v", name, r.Set)
		}
		if math.Abs(r.Value-0.9) > 1e-9 {
			t.Errorf("%s value = %v", name, r.Value)
		}
	}
}
