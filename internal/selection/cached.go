package selection

import (
	"slices"
	"sync"
	"sync/atomic"

	"freshsource/internal/obs"
)

// CachedOracle memoizes Value evaluations keyed by the canonical
// (order-insensitive) set, so the local-search algorithms — which revisit
// the same candidate sets across rounds (delete sweeps after a failed add,
// GRASP restarts converging to the same basin) — pay for each distinct set
// once. It is safe for concurrent use, so parallel sweeps share one cache.
//
// Keying: a set is identified by the XOR of a splitmix64 hash of each
// member — order-insensitive by commutativity and extendable to set ∪ {x}
// with one extra hash, so the incremental probe path derives its key in
// O(1) without materializing the candidate set. Collisions are resolved by
// an exact sorted-membership comparison per bucket entry (for probes, a
// merge-walk of base ∪ {x} against the stored set with nothing allocated).
// The old canonical-key-string scheme allocated a fresh key per lookup; the
// hash path makes a probe hit allocation-free, which
// BenchmarkCachedOracleValueAdd pins.
//
// Layering: algorithms wrap their oracle as Count(Cached(f)), which this
// package does automatically when the cache is handed in; the counter sits
// above the cache, so Result.OracleCalls still reports the algorithm's
// probe count and stays identical with and without caching. Cache
// effectiveness is visible separately via Hits/Misses and the
// selection.cache.{hits,misses} obs counters.
type CachedOracle struct {
	inner Oracle

	mu   sync.Mutex
	vals map[uint64][]cacheEntry
	size int

	hits, misses       atomic.Int64
	obsHits, obsMisses *obs.CounterVar

	// sortBuf pools the Value path's sort scratch (as slice pointers, so
	// Get/Put don't box a header).
	sortBuf sync.Pool
}

// cacheEntry is one memoized set in a hash bucket: the sorted membership
// (the collision tiebreaker) and the value.
type cacheEntry struct {
	set []int32
	val float64
}

// Cached wraps f in a CachedOracle. Wrapping a CachedOracle returns it
// unchanged so layers stay idempotent.
func Cached(f Oracle) *CachedOracle {
	if c, ok := f.(*CachedOracle); ok {
		return c
	}
	return &CachedOracle{
		inner:     f,
		vals:      make(map[uint64][]cacheEntry),
		obsHits:   obs.Counter("selection.cache.hits"),
		obsMisses: obs.Counter("selection.cache.misses"),
	}
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit hash
// whose per-element values XOR into an order-insensitive set hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// setHash returns the order-insensitive membership hash of a set.
func setHash(set []int) uint64 {
	var h uint64
	for _, x := range set {
		h ^= splitmix64(uint64(x))
	}
	return h
}

// eqSorted reports whether two sorted membership slices are identical.
func eqSorted(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// eqSortedPlus reports whether entry equals base ∪ {x} (both sorted, x not
// in base) by merge-walking — no merged slice is built.
func eqSortedPlus(entry, base []int32, x int32) bool {
	if len(entry) != len(base)+1 {
		return false
	}
	i := 0
	xUsed := false
	for _, v := range entry {
		if !xUsed && (i >= len(base) || x <= base[i]) {
			if v != x {
				return false
			}
			xUsed = true
			continue
		}
		if v != base[i] {
			return false
		}
		i++
	}
	return xUsed && i == len(base)
}

// Value implements Oracle, memoizing by canonical set.
func (c *CachedOracle) Value(set []int) float64 {
	bp, _ := c.sortBuf.Get().(*[]int32)
	if bp == nil {
		bp = new([]int32)
	}
	s := (*bp)[:0]
	for _, x := range set {
		s = append(s, int32(x))
	}
	slices.Sort(s)
	h := setHash(set)

	c.mu.Lock()
	for _, e := range c.vals[h] {
		if eqSorted(e.set, s) {
			v := e.val
			c.mu.Unlock()
			c.hits.Add(1)
			c.obsHits.Add(1)
			*bp = s
			c.sortBuf.Put(bp)
			return v
		}
	}
	c.mu.Unlock()

	// Miss: evaluate outside the lock so parallel sweeps overlap distinct
	// evaluations; concurrent misses of the same set both evaluate
	// (identical results — the oracle is deterministic) and the first store
	// wins.
	c.misses.Add(1)
	c.obsMisses.Add(1)
	v := c.inner.Value(set)
	c.mu.Lock()
	if !c.bucketHas(h, func(e []int32) bool { return eqSorted(e, s) }) {
		c.vals[h] = append(c.vals[h], cacheEntry{set: append([]int32(nil), s...), val: v})
		c.size++
	}
	c.mu.Unlock()
	*bp = s
	c.sortBuf.Put(bp)
	return v
}

// bucketHas reports whether bucket h already holds a set matching eq.
// Caller holds c.mu.
func (c *CachedOracle) bucketHas(h uint64, eq func([]int32) bool) bool {
	for _, e := range c.vals[h] {
		if eq(e.set) {
			return true
		}
	}
	return false
}

// Feasible implements Oracle. Feasibility is not memoized: budget checks
// are cheap relative to quality evaluation and keeping them live avoids a
// second map on the hot path.
func (c *CachedOracle) Feasible(set []int) bool { return c.inner.Feasible(set) }

// cachedAddState carries the base set (original order for the inner
// fallback), its sorted membership and hash for O(1) probe keys, plus the
// inner oracle's incremental state (nil when the inner oracle declined or
// is not incremental — misses then fall back to a full Value evaluation).
type cachedAddState struct {
	set    []int
	sorted []int32
	hash   uint64
	inner  any
}

// BeginAdd implements IncrementalOracle. It always accepts: even without
// an incremental inner oracle the memoized add-probe path pays off, since
// repeated sweeps probe the same supersets.
func (c *CachedOracle) BeginAdd(set []int) any {
	st := &cachedAddState{set: append([]int(nil), set...), hash: setHash(set)}
	st.sorted = make([]int32, len(set))
	for i, x := range set {
		st.sorted[i] = int32(x)
	}
	slices.Sort(st.sorted)
	if io, ok := c.inner.(IncrementalOracle); ok {
		st.inner = io.BeginAdd(set)
	}
	return st
}

// ValueAdd implements IncrementalOracle: the memoized value of
// set ∪ {x}, computed on a miss through the inner incremental state when
// available. A hit derives the key incrementally and compares membership
// by merge-walk — no allocation at all.
func (c *CachedOracle) ValueAdd(state any, x int) float64 {
	st := state.(*cachedAddState)
	h := st.hash ^ splitmix64(uint64(x))
	x32 := int32(x)

	c.mu.Lock()
	for _, e := range c.vals[h] {
		if eqSortedPlus(e.set, st.sorted, x32) {
			v := e.val
			c.mu.Unlock()
			c.hits.Add(1)
			c.obsHits.Add(1)
			return v
		}
	}
	c.mu.Unlock()

	c.misses.Add(1)
	c.obsMisses.Add(1)
	var v float64
	if st.inner != nil {
		v = c.inner.(IncrementalOracle).ValueAdd(st.inner, x)
	} else {
		v = c.inner.Value(with(st.set, x))
	}
	c.mu.Lock()
	if !c.bucketHas(h, func(e []int32) bool { return eqSortedPlus(e, st.sorted, x32) }) {
		merged := make([]int32, 0, len(st.sorted)+1)
		i := 0
		for ; i < len(st.sorted) && st.sorted[i] < x32; i++ {
			merged = append(merged, st.sorted[i])
		}
		merged = append(merged, x32)
		merged = append(merged, st.sorted[i:]...)
		c.vals[h] = append(c.vals[h], cacheEntry{set: merged, val: v})
		c.size++
	}
	c.mu.Unlock()
	return v
}

// Hits returns the number of memoized evaluations served so far.
func (c *CachedOracle) Hits() int { return int(c.hits.Load()) }

// Misses returns the number of evaluations that went to the inner oracle.
func (c *CachedOracle) Misses() int { return int(c.misses.Load()) }

// Len returns the number of distinct sets memoized.
func (c *CachedOracle) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Unwrap returns the wrapped oracle.
func (c *CachedOracle) Unwrap() Oracle { return c.inner }
