package selection

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"freshsource/internal/obs"
)

// CachedOracle memoizes Value evaluations keyed by the canonical
// (order-insensitive) set, so the local-search algorithms — which revisit
// the same candidate sets across rounds (delete sweeps after a failed add,
// GRASP restarts converging to the same basin) — pay for each distinct set
// once. It is safe for concurrent use, so parallel sweeps share one cache.
//
// Layering: algorithms wrap their oracle as Count(Cached(f)), which this
// package does automatically when the cache is handed in; the counter sits
// above the cache, so Result.OracleCalls still reports the algorithm's
// probe count and stays identical with and without caching. Cache
// effectiveness is visible separately via Hits/Misses and the
// selection.cache.{hits,misses} obs counters.
type CachedOracle struct {
	inner Oracle

	mu   sync.Mutex
	vals map[string]float64

	hits, misses       atomic.Int64
	obsHits, obsMisses *obs.CounterVar
}

// Cached wraps f in a CachedOracle. Wrapping a CachedOracle returns it
// unchanged so layers stay idempotent.
func Cached(f Oracle) *CachedOracle {
	if c, ok := f.(*CachedOracle); ok {
		return c
	}
	return &CachedOracle{
		inner:     f,
		vals:      make(map[string]float64),
		obsHits:   obs.Counter("selection.cache.hits"),
		obsMisses: obs.Counter("selection.cache.misses"),
	}
}

// setKey canonicalizes a set into a map key: sorted order, varint-packed.
// Any permutation of the same set produces the same key.
func setKey(set []int) string {
	s := append([]int(nil), set...)
	sort.Ints(s)
	buf := make([]byte, 0, binary.MaxVarintLen64*len(s))
	for _, x := range s {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return string(buf)
}

// lookup returns the memoized value for key, or computes it via miss and
// stores it. The inner evaluation runs outside the lock so parallel sweeps
// can overlap distinct evaluations; concurrent misses of the same key both
// evaluate (identical results — the oracle is deterministic) and the last
// store wins.
func (c *CachedOracle) lookup(key string, miss func() float64) float64 {
	c.mu.Lock()
	v, ok := c.vals[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		c.obsHits.Add(1)
		return v
	}
	c.misses.Add(1)
	c.obsMisses.Add(1)
	v = miss()
	c.mu.Lock()
	c.vals[key] = v
	c.mu.Unlock()
	return v
}

// Value implements Oracle, memoizing by canonical set.
func (c *CachedOracle) Value(set []int) float64 {
	return c.lookup(setKey(set), func() float64 { return c.inner.Value(set) })
}

// Feasible implements Oracle. Feasibility is not memoized: budget checks
// are cheap relative to quality evaluation and keeping them live avoids a
// second map on the hot path.
func (c *CachedOracle) Feasible(set []int) bool { return c.inner.Feasible(set) }

// cachedAddState carries the base set for key derivation plus the inner
// oracle's incremental state (nil when the inner oracle declined or is not
// incremental — misses then fall back to a full Value evaluation).
type cachedAddState struct {
	set   []int
	inner any
}

// BeginAdd implements IncrementalOracle. It always accepts: even without
// an incremental inner oracle the memoized add-probe path pays off, since
// repeated sweeps probe the same supersets.
func (c *CachedOracle) BeginAdd(set []int) any {
	st := &cachedAddState{set: append([]int(nil), set...)}
	if io, ok := c.inner.(IncrementalOracle); ok {
		st.inner = io.BeginAdd(set)
	}
	return st
}

// ValueAdd implements IncrementalOracle: the memoized value of
// set ∪ {x}, computed on a miss through the inner incremental state when
// available.
func (c *CachedOracle) ValueAdd(state any, x int) float64 {
	st := state.(*cachedAddState)
	cand := with(st.set, x)
	return c.lookup(setKey(cand), func() float64 {
		if st.inner != nil {
			return c.inner.(IncrementalOracle).ValueAdd(st.inner, x)
		}
		return c.inner.Value(cand)
	})
}

// Hits returns the number of memoized evaluations served so far.
func (c *CachedOracle) Hits() int { return int(c.hits.Load()) }

// Misses returns the number of evaluations that went to the inner oracle.
func (c *CachedOracle) Misses() int { return int(c.misses.Load()) }

// Len returns the number of distinct sets memoized.
func (c *CachedOracle) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vals)
}

// Unwrap returns the wrapped oracle.
func (c *CachedOracle) Unwrap() Oracle { return c.inner }
