package selection

import (
	"math"
	"reflect"
	"testing"

	"freshsource/internal/matroid"
	"freshsource/internal/obs"
)

// requireSameRun asserts two Results from the same algorithm are fully
// identical: set, bit-identical value and exact oracle-call count.
func requireSameRun(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Set, got.Set) {
		t.Errorf("%s: set %v != %v", label, got.Set, want.Set)
	}
	if want.Value != got.Value {
		t.Errorf("%s: value %v != %v (not bit-identical)", label, got.Value, want.Value)
	}
	if want.OracleCalls != got.OracleCalls {
		t.Errorf("%s: oracle calls %d != %d", label, got.OracleCalls, want.OracleCalls)
	}
}

// TestScaleDeterminism pins the CELF contract at a paper-ish candidate
// count: LazyGreedy returns exactly plain Greedy's selection — same set,
// bit-identical value — at worker counts 1/2/4/8, with speculative
// batched re-evaluation enabled throughout. The purely lazy path
// (Speculative(-1)) additionally pins OracleCalls: strictly fewer than
// Greedy's and identical at every worker count; speculative runs may only
// spend more probes than the lazy run, never select differently. -short
// trims the instance so the -race run stays cheap.
func TestScaleDeterminism(t *testing.T) {
	n := 1200
	if testing.Short() {
		n = 300
	}
	plain := randomWC(n, 17)
	// Cap the selection depth: the interesting regime is many candidates
	// competing for few slots, not ingesting a third of the corpus.
	plain.maxSet = 24
	o := &incrWC{wcOracle: *plain}

	greedy := Greedy(o, n)
	if len(greedy.Set) == 0 {
		t.Fatal("greedy selected nothing")
	}
	lazy := LazyGreedy(o, n)
	requireSameSelection(t, "celf vs greedy", greedy, lazy)
	if lazy.OracleCalls >= greedy.OracleCalls {
		t.Errorf("celf spent %d oracle calls, want fewer than greedy's %d",
			lazy.OracleCalls, greedy.OracleCalls)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		g := Greedy(o, n, Parallel(workers))
		requireSameRun(t, "greedy across workers", greedy, g)
		pure := LazyGreedy(o, n, Parallel(workers), Speculative(-1))
		requireSameRun(t, "purely lazy celf across workers", lazy, pure)
		spec := LazyGreedy(o, n, Parallel(workers), Speculative(2))
		requireSameSelection(t, "speculative celf vs greedy", greedy, spec)
		if spec.OracleCalls < lazy.OracleCalls {
			t.Errorf("workers=%d: speculative celf spent %d oracle calls, below the lazy run's %d",
				workers, spec.OracleCalls, lazy.OracleCalls)
		}
	}
}

// requireSameSelection asserts got selects exactly want's set with a
// bit-identical value (oracle-call counts may differ — the speculative
// CELF contract).
func requireSameSelection(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Set, got.Set) {
		t.Errorf("%s: set %v != %v", label, got.Set, want.Set)
	}
	if want.Value != got.Value {
		t.Errorf("%s: value %v != %v (not bit-identical)", label, got.Value, want.Value)
	}
}

// TestSpeculativeWasteBounded pins the speculation accounting: every
// speculative recompute is either the probe that produced a round's
// adopted argmax or is charged to the wasted counter, so
// speculative − wasted ≤ adds (each adoption redeems at most one
// recompute) and wasted never exceeds speculative.
func TestSpeculativeWasteBounded(t *testing.T) {
	obs.Enable()
	specC := obs.Counter("selection.lazygreedy.speculative_recomputes")
	wasteC := obs.Counter("selection.lazygreedy.speculative_wasted")
	addsC := obs.Counter("selection.lazygreedy.adds")
	spec0, waste0, adds0 := specC.Value(), wasteC.Value(), addsC.Value()

	plain := randomWC(400, 23)
	plain.maxSet = 16
	o := &incrWC{wcOracle: *plain}
	lazy := LazyGreedy(o, 400, Speculative(-1))
	specRun := LazyGreedy(o, 400, Parallel(4), Speculative(4))
	requireSameSelection(t, "speculative celf vs lazy", lazy, specRun)

	spec := specC.Value() - spec0
	waste := wasteC.Value() - waste0
	adds := addsC.Value() - adds0
	if spec == 0 {
		t.Fatal("speculation never engaged (no speculative recomputes recorded)")
	}
	if waste > spec {
		t.Errorf("wasted %d > speculative %d", waste, spec)
	}
	if spec-waste > adds {
		t.Errorf("speculative − wasted = %d exceeds adds %d (more redeemed recomputes than adoptions)",
			spec-waste, adds)
	}
	if specRun.OracleCalls < lazy.OracleCalls {
		t.Errorf("speculative run spent %d calls, below lazy's %d", specRun.OracleCalls, lazy.OracleCalls)
	}
}

// TestSampledNeverWorse is the property the sampled neighborhoods
// guarantee: because the singleton initialization and the delete sweeps
// stay exhaustive, a sampled run can never return a worse objective than
// its start point — the best feasible singleton — no matter how little of
// the add/exchange neighborhood the sample covers.
func TestSampledNeverWorse(t *testing.T) {
	const n = 60
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i / 2
	}
	pm, err := matroid.OnePerClass(classOf)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		o := &incrWC{wcOracle: *randomWC(n, seed)}
		start := math.Inf(-1)
		for x := 0; x < n; x++ {
			if o.Feasible([]int{x}) {
				if v := o.Value([]int{x}); v > start {
					start = v
				}
			}
		}
		for _, sample := range []int{4, 16} {
			ms := MaxSub(o, n, 0.05, Sampled(sample, seed))
			if ms.Value < start {
				t.Errorf("seed=%d sample=%d: sampled MaxSub %v below its start %v",
					seed, sample, ms.Value, start)
			}
			mm := MatroidMax(o, n, []matroid.Matroid{pm}, 0.05, Sampled(sample, seed))
			if mm.Value < start {
				t.Errorf("seed=%d sample=%d: sampled MatroidMax %v below its start %v",
					seed, sample, mm.Value, start)
			}
			// Sampling draws before the sweep fans out, so a sampled run is
			// still deterministic in the worker count.
			requireSameRun(t, "sampled maxsub across workers",
				ms, MaxSub(o, n, 0.05, Sampled(sample, seed), Parallel(4)))
		}
	}
}

// TestCachedOracleValueAddHitNoAlloc pins the hash-keyed probe path: a
// memoized ValueAdd hit derives its key incrementally and compares
// membership by merge-walk, allocating nothing.
func TestCachedOracleValueAddHitNoAlloc(t *testing.T) {
	c := Cached(&incrWC{wcOracle: *randomWC(32, 5)})
	st := c.BeginAdd([]int{1, 2, 3})
	c.ValueAdd(st, 7) // prime the memo
	if avg := testing.AllocsPerRun(200, func() { c.ValueAdd(st, 7) }); avg != 0 {
		t.Errorf("ValueAdd hit allocates %v per op, want 0", avg)
	}
	if c.Hits() < 200 {
		t.Errorf("hits = %d; the probed set should have been memoized", c.Hits())
	}
}
