package selection

import (
	"math"
	"reflect"
	"testing"

	"freshsource/internal/matroid"
)

// requireSameRun asserts two Results from the same algorithm are fully
// identical: set, bit-identical value and exact oracle-call count.
func requireSameRun(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Set, got.Set) {
		t.Errorf("%s: set %v != %v", label, got.Set, want.Set)
	}
	if want.Value != got.Value {
		t.Errorf("%s: value %v != %v (not bit-identical)", label, got.Value, want.Value)
	}
	if want.OracleCalls != got.OracleCalls {
		t.Errorf("%s: oracle calls %d != %d", label, got.OracleCalls, want.OracleCalls)
	}
}

// TestScaleDeterminism pins the CELF contract at a paper-ish candidate
// count: LazyGreedy returns exactly plain Greedy's selection — same set,
// bit-identical value — while spending strictly fewer oracle calls, and
// each algorithm's full Result (OracleCalls included) is identical at
// worker counts 1 and 4. -short trims the instance so the -race run stays
// cheap.
func TestScaleDeterminism(t *testing.T) {
	n := 1200
	if testing.Short() {
		n = 300
	}
	plain := randomWC(n, 17)
	// Cap the selection depth: the interesting regime is many candidates
	// competing for few slots, not ingesting a third of the corpus.
	plain.maxSet = 24
	o := &incrWC{wcOracle: *plain}

	type pair struct{ greedy, celf Result }
	var runs []pair
	for _, workers := range []int{1, 4} {
		g := Greedy(o, n, Parallel(workers))
		l := LazyGreedy(o, n, Parallel(workers))
		if !reflect.DeepEqual(g.Set, l.Set) {
			t.Fatalf("workers=%d: celf set %v != greedy set %v", workers, l.Set, g.Set)
		}
		if g.Value != l.Value {
			t.Fatalf("workers=%d: celf value %v != greedy value %v (not bit-identical)",
				workers, l.Value, g.Value)
		}
		if len(g.Set) == 0 {
			t.Fatal("greedy selected nothing")
		}
		if l.OracleCalls >= g.OracleCalls {
			t.Errorf("workers=%d: celf spent %d oracle calls, want fewer than greedy's %d",
				workers, l.OracleCalls, g.OracleCalls)
		}
		runs = append(runs, pair{greedy: g, celf: l})
	}
	for i := 1; i < len(runs); i++ {
		requireSameRun(t, "greedy across workers", runs[0].greedy, runs[i].greedy)
		requireSameRun(t, "celf across workers", runs[0].celf, runs[i].celf)
	}
}

// TestSampledNeverWorse is the property the sampled neighborhoods
// guarantee: because the singleton initialization and the delete sweeps
// stay exhaustive, a sampled run can never return a worse objective than
// its start point — the best feasible singleton — no matter how little of
// the add/exchange neighborhood the sample covers.
func TestSampledNeverWorse(t *testing.T) {
	const n = 60
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i / 2
	}
	pm, err := matroid.OnePerClass(classOf)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 8; seed++ {
		o := &incrWC{wcOracle: *randomWC(n, seed)}
		start := math.Inf(-1)
		for x := 0; x < n; x++ {
			if o.Feasible([]int{x}) {
				if v := o.Value([]int{x}); v > start {
					start = v
				}
			}
		}
		for _, sample := range []int{4, 16} {
			ms := MaxSub(o, n, 0.05, Sampled(sample, seed))
			if ms.Value < start {
				t.Errorf("seed=%d sample=%d: sampled MaxSub %v below its start %v",
					seed, sample, ms.Value, start)
			}
			mm := MatroidMax(o, n, []matroid.Matroid{pm}, 0.05, Sampled(sample, seed))
			if mm.Value < start {
				t.Errorf("seed=%d sample=%d: sampled MatroidMax %v below its start %v",
					seed, sample, mm.Value, start)
			}
			// Sampling draws before the sweep fans out, so a sampled run is
			// still deterministic in the worker count.
			requireSameRun(t, "sampled maxsub across workers",
				ms, MaxSub(o, n, 0.05, Sampled(sample, seed), Parallel(4)))
		}
	}
}

// TestCachedOracleValueAddHitNoAlloc pins the hash-keyed probe path: a
// memoized ValueAdd hit derives its key incrementally and compares
// membership by merge-walk, allocating nothing.
func TestCachedOracleValueAddHitNoAlloc(t *testing.T) {
	c := Cached(&incrWC{wcOracle: *randomWC(32, 5)})
	st := c.BeginAdd([]int{1, 2, 3})
	c.ValueAdd(st, 7) // prime the memo
	if avg := testing.AllocsPerRun(200, func() { c.ValueAdd(st, 7) }); avg != 0 {
		t.Errorf("ValueAdd hit allocates %v per op, want 0", avg)
	}
	if c.Hits() < 200 {
		t.Errorf("hits = %d; the probed set should have been memoized", c.Hits())
	}
}
