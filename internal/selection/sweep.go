package selection

import (
	"context"
	"runtime"
	"sort"

	"freshsource/internal/obs"
	"freshsource/internal/stats"
)

// Options tunes how an algorithm runs; the zero value reproduces the
// historical sequential behavior exactly.
type Options struct {
	// Workers is the number of goroutines each candidate sweep fans move
	// evaluations across; 0 or 1 evaluates sequentially.
	Workers int
	// Ctx, when non-nil, lets a run be canceled between (and inside)
	// candidate sweeps; see Context.
	Ctx context.Context
	// Sample, when positive, caps the number of moves the wide local-search
	// neighborhoods (MaxSub's add sweep, the matroid search's exchange
	// sweep) examine per round at a uniform random subset of that size; see
	// Sampled. 0 keeps the exhaustive neighborhoods.
	Sample int
	// SampleSeed seeds the neighborhood sampler; runs with equal seeds draw
	// identical neighborhoods.
	SampleSeed int64
	// SpecStride tunes LazyGreedy's speculative batched re-evaluation: when
	// the CELF heap top is stale, up to Workers×SpecStride stale entries are
	// recomputed concurrently before the sequential adoption step. 0 applies
	// the default stride (speculation then engages only with Workers > 1);
	// negative disables speculation; see Speculative.
	SpecStride int
}

// Option mutates Options.
type Option func(*Options)

// Parallel fans each round's candidate-move evaluations (adds, deletes,
// swaps) across the given number of workers; workers <= 0 sizes the
// fan-out to the smaller of GOMAXPROCS and the machine's CPU count. The
// sweeps are pure CPU work, so a GOMAXPROCS set above the cores that
// actually exist (common on capped containers) buys no overlap — only
// preemption churn between runnable workers fighting for the same core;
// on a single-core host the default therefore degrades to the sequential
// path exactly, which makes the parallel-slower-than-sequential inversion
// structurally impossible there. An explicit positive count is honored
// verbatim. The result is deterministic and identical to the sequential
// path either way: every move's value lands at a fixed index and the
// argmax reduction runs sequentially in the original scan order, so ties
// always resolve to the lowest-index move and oracle-call counts are
// unchanged.
//
// Parallel sweeps require the oracle's Value/Feasible (and ValueAdd, when
// implemented) to be safe for concurrent calls; Profit and CountingOracle
// are.
func Parallel(workers int) Option {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); n < workers {
			workers = n
		}
	}
	return func(o *Options) { o.Workers = workers }
}

// Context makes the run cancelable: when ctx is canceled the algorithm
// abandons the sweep in flight, discards that sweep's partial results, and
// returns a Result whose Err is ErrCanceled and whose Set/Value hold the
// last fully-completed state (never a partially-reduced argmax). Without
// this option runs are uninterruptible, as historically.
func Context(ctx context.Context) Option {
	return func(o *Options) { o.Ctx = ctx }
}

// Sampled makes the wide local-search neighborhoods stochastic: each
// improvement round of MaxSub's addition sweep and MatroidLocalSearch's
// exchange sweep examines a uniform random subset of at most size moves
// instead of all O(n), so a swap round costs O(size) oracle calls at
// paper-scale candidate counts. The narrow neighborhoods — singleton
// initialization and deletion sweeps over the current set — stay
// exhaustive, which preserves the never-worse-than-start guarantee: a
// sampled search still only ever takes strict improvements from its start
// point, it just may stop at a weaker local optimum than the exhaustive
// search.
//
// Sampling is deterministic for a fixed seed and independent of the
// Workers option: indices are drawn sequentially before the sweep fans
// out, and each sampled neighborhood is evaluated in ascending index order
// so ties keep resolving to the lowest-index move.
func Sampled(size int, seed int64) Option {
	return func(o *Options) { o.Sample, o.SampleSeed = size, seed }
}

// defaultSpecStride is the per-worker speculation depth LazyGreedy uses
// when the Speculative option is absent and the run has multiple workers.
// Deliberately deep: recomputing a large cluster of competitive stale
// entries in one batch tightens all their bounds against the same
// solution state, which pushes also-rans down the heap and saves their
// individual recomputes in later rounds — measured on the 15k corpus,
// total oracle calls FALL as the stride grows (net waste ~1% at 32× vs
// ~4% at 4×), while wider batches also give the pool more moves to deal.
const defaultSpecStride = 16

// Speculative sets LazyGreedy's speculative batch stride: when the CELF
// heap top is stale, the top Workers×stride stale entries are popped and
// recomputed concurrently, then reinserted and adopted sequentially in
// Greedy's exact argmax order. Set and Value stay byte-identical to
// sequential Greedy/LazyGreedy at any stride and worker count — only
// OracleCalls may grow, by the speculation margin (recomputes a purely
// lazy run would have skipped), reported via the
// selection.lazygreedy.speculative_{recomputes,wasted} counters.
//
// stride 0 restores the default (speculate with defaultSpecStride when
// Workers > 1, stay purely lazy otherwise); a negative stride disables
// speculation at any worker count; a positive stride forces it even on a
// single-worker run (useful for pinning determinism, pure overhead
// otherwise). Algorithms other than LazyGreedy ignore the option.
func Speculative(stride int) Option {
	return func(o *Options) { o.SpecStride = stride }
}

func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// evaluator runs candidate sweeps for one algorithm run.
type evaluator struct {
	workers int
	ctx     context.Context
	sample  int
	// spec is LazyGreedy's resolved speculative batch size (stale entries
	// recomputed per batch); 0 disables speculation.
	spec int
	// rng drives neighborhood sampling; a pointer, because evaluators are
	// copied by value while the sampler's state must advance across rounds.
	rng *stats.RNG
	// pool holds the run's persistent sweep workers (nil on sequential
	// runs). Shared by every evaluator copy of the run; the owning
	// algorithm must call close on exit.
	pool *sweepPool
}

func newEvaluator(opts []Option) evaluator {
	o := buildOptions(opts)
	w := o.Workers
	if w < 1 {
		w = 1
	}
	ev := evaluator{workers: w, ctx: o.Ctx, sample: o.Sample}
	if o.Sample > 0 {
		ev.rng = stats.NewRNG(o.SampleSeed)
	}
	if w > 1 {
		ev.pool = newSweepPool(w)
	}
	switch {
	case o.SpecStride > 0:
		ev.spec = w * o.SpecStride
	case o.SpecStride == 0 && w > 1:
		ev.spec = w * defaultSpecStride
	}
	return ev
}

// close releases the run's sweep pool (a no-op on sequential runs). Every
// algorithm defers it on entry so the pool's helpers never outlive the
// run, finished or canceled.
func (e evaluator) close() { e.pool.close() }

// sampleIdx returns the move indices a sampled wide sweep should examine
// out of [0, m): all of them (nil, meaning the identity) when sampling is
// off or m already fits the cap, else a sorted uniform sample of size
// e.sample. The draw happens sequentially on the caller's goroutine and
// the result is sorted ascending, so sampled sweeps stay deterministic for
// a fixed seed at any worker count and keep lowest-index tie resolution.
func (e evaluator) sampleIdx(m int) []int {
	if e.sample <= 0 || m <= e.sample {
		return nil
	}
	idx := e.rng.SampleWithoutReplacement(m, e.sample)
	sort.Ints(idx)
	obs.Counter("selection.sweep.sampled_rounds").Inc()
	obs.Counter("selection.sweep.sampled_skipped").Add(int64(m - len(idx)))
	return idx
}

// canceled reports whether the run's context (if any) has been canceled.
// Algorithms call it right after each sweep: a true return means that
// sweep's outputs are partial and must be discarded.
func (e evaluator) canceled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// sweepOn is sweep restricted to the given move indices (idx nil — the
// sampleIdx identity — sweeps all of [0, m)).
func (e evaluator) sweepOn(m int, idx []int, eval func(i int)) {
	if idx == nil {
		e.sweep(m, eval)
		return
	}
	e.sweep(len(idx), func(k int) { eval(idx[k]) })
}

// cancelStride bounds how many sequential evaluations run between context
// checks; oracle evaluations dominate, so the check is amortized to noise.
const cancelStride = 32

// minMovesPerWorker is the adaptive fan-out floor: a sweep only engages
// the pool when it has at least this many moves per worker. Below the
// floor — short deletion sweeps, end-game rounds, tiny instances — the
// cross-goroutine handoff costs more than the moves themselves, which is
// exactly how the parallel path used to lose to sequential on small
// rounds; such sweeps run inline instead (and produce identical results,
// since the parallel path is deterministic anyway).
const minMovesPerWorker = 16

// sweep evaluates eval(i) for every i in [0, m), fanning across the
// evaluator's persistent pool when the sweep is wide enough to pay for
// the handoff (see minMovesPerWorker). eval must write its outcome to
// storage indexed by i (never shared across indices), which makes the
// sweep's result independent of evaluation order. Narrow sweeps and
// single-worker runs evaluate inline in index order. A canceled context
// stops the sweep early, leaving the remaining indices unevaluated —
// callers must check canceled() before reducing the outputs.
func (e evaluator) sweep(m int, eval func(i int)) {
	if e.pool == nil || m < e.workers*minMovesPerWorker {
		e.sweepInline(m, eval)
		return
	}
	e.sweepPooled(m, eval)
}

// sweepEager is sweep without the fan-out floor: any multi-move sweep on
// a parallel run goes through the pool. LazyGreedy's speculative batches
// use it — their moves are known-heavy oracle probes (that is why they
// were batched at all), so even a handful are worth the handoff.
func (e evaluator) sweepEager(m int, eval func(i int)) {
	if e.pool == nil || m < 2 {
		e.sweepInline(m, eval)
		return
	}
	e.sweepPooled(m, eval)
}

func (e evaluator) sweepInline(m int, eval func(i int)) {
	if e.ctx == nil {
		for i := 0; i < m; i++ {
			eval(i)
		}
		return
	}
	for i := 0; i < m; i++ {
		if i%cancelStride == 0 && e.ctx.Err() != nil {
			return
		}
		eval(i)
	}
}

func (e evaluator) sweepPooled(m int, eval func(i int)) {
	if obs.Enabled() {
		obs.Counter("selection.sweep.parallel_batches").Inc()
		obs.Counter("selection.sweep.parallel_moves").Add(int64(m))
	}
	e.pool.run(m, e.ctx, eval)
}
