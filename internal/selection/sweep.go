package selection

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"freshsource/internal/obs"
	"freshsource/internal/stats"
)

// Options tunes how an algorithm runs; the zero value reproduces the
// historical sequential behavior exactly.
type Options struct {
	// Workers is the number of goroutines each candidate sweep fans move
	// evaluations across; 0 or 1 evaluates sequentially.
	Workers int
	// Ctx, when non-nil, lets a run be canceled between (and inside)
	// candidate sweeps; see Context.
	Ctx context.Context
	// Sample, when positive, caps the number of moves the wide local-search
	// neighborhoods (MaxSub's add sweep, the matroid search's exchange
	// sweep) examine per round at a uniform random subset of that size; see
	// Sampled. 0 keeps the exhaustive neighborhoods.
	Sample int
	// SampleSeed seeds the neighborhood sampler; runs with equal seeds draw
	// identical neighborhoods.
	SampleSeed int64
}

// Option mutates Options.
type Option func(*Options)

// Parallel fans each round's candidate-move evaluations (adds, deletes,
// swaps) across the given number of workers; workers <= 0 uses
// GOMAXPROCS. The result is deterministic and identical to the sequential
// path: every move's value lands at a fixed index and the argmax reduction
// runs sequentially in the original scan order, so ties always resolve to
// the lowest-index move and oracle-call counts are unchanged.
//
// Parallel sweeps require the oracle's Value/Feasible (and ValueAdd, when
// implemented) to be safe for concurrent calls; Profit and CountingOracle
// are.
func Parallel(workers int) Option {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(o *Options) { o.Workers = workers }
}

// Context makes the run cancelable: when ctx is canceled the algorithm
// abandons the sweep in flight, discards that sweep's partial results, and
// returns a Result whose Err is ErrCanceled and whose Set/Value hold the
// last fully-completed state (never a partially-reduced argmax). Without
// this option runs are uninterruptible, as historically.
func Context(ctx context.Context) Option {
	return func(o *Options) { o.Ctx = ctx }
}

// Sampled makes the wide local-search neighborhoods stochastic: each
// improvement round of MaxSub's addition sweep and MatroidLocalSearch's
// exchange sweep examines a uniform random subset of at most size moves
// instead of all O(n), so a swap round costs O(size) oracle calls at
// paper-scale candidate counts. The narrow neighborhoods — singleton
// initialization and deletion sweeps over the current set — stay
// exhaustive, which preserves the never-worse-than-start guarantee: a
// sampled search still only ever takes strict improvements from its start
// point, it just may stop at a weaker local optimum than the exhaustive
// search.
//
// Sampling is deterministic for a fixed seed and independent of the
// Workers option: indices are drawn sequentially before the sweep fans
// out, and each sampled neighborhood is evaluated in ascending index order
// so ties keep resolving to the lowest-index move.
func Sampled(size int, seed int64) Option {
	return func(o *Options) { o.Sample, o.SampleSeed = size, seed }
}

func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// evaluator runs candidate sweeps for one algorithm run.
type evaluator struct {
	workers int
	ctx     context.Context
	sample  int
	// rng drives neighborhood sampling; a pointer, because evaluators are
	// copied by value while the sampler's state must advance across rounds.
	rng *stats.RNG
}

func newEvaluator(opts []Option) evaluator {
	o := buildOptions(opts)
	w := o.Workers
	if w < 1 {
		w = 1
	}
	ev := evaluator{workers: w, ctx: o.Ctx, sample: o.Sample}
	if o.Sample > 0 {
		ev.rng = stats.NewRNG(o.SampleSeed)
	}
	return ev
}

// sampleIdx returns the move indices a sampled wide sweep should examine
// out of [0, m): all of them (nil, meaning the identity) when sampling is
// off or m already fits the cap, else a sorted uniform sample of size
// e.sample. The draw happens sequentially on the caller's goroutine and
// the result is sorted ascending, so sampled sweeps stay deterministic for
// a fixed seed at any worker count and keep lowest-index tie resolution.
func (e evaluator) sampleIdx(m int) []int {
	if e.sample <= 0 || m <= e.sample {
		return nil
	}
	idx := e.rng.SampleWithoutReplacement(m, e.sample)
	sort.Ints(idx)
	obs.Counter("selection.sweep.sampled_rounds").Inc()
	obs.Counter("selection.sweep.sampled_skipped").Add(int64(m - len(idx)))
	return idx
}

// canceled reports whether the run's context (if any) has been canceled.
// Algorithms call it right after each sweep: a true return means that
// sweep's outputs are partial and must be discarded.
func (e evaluator) canceled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// sweepOn is sweep restricted to the given move indices (idx nil — the
// sampleIdx identity — sweeps all of [0, m)).
func (e evaluator) sweepOn(m int, idx []int, eval func(i int)) {
	if idx == nil {
		e.sweep(m, eval)
		return
	}
	e.sweep(len(idx), func(k int) { eval(idx[k]) })
}

// cancelStride bounds how many sequential evaluations run between context
// checks; oracle evaluations dominate, so the check is amortized to noise.
const cancelStride = 32

// sweep evaluates eval(i) for every i in [0, m), fanning across the
// evaluator's workers. eval must write its outcome to storage indexed by i
// (never shared across indices), which makes the sweep's result independent
// of evaluation order. With one worker the calls run inline in index order.
// A canceled context stops the sweep early, leaving the remaining indices
// unevaluated — callers must check canceled() before reducing the outputs.
func (e evaluator) sweep(m int, eval func(i int)) {
	w := e.workers
	if w > m {
		w = m
	}
	if w <= 1 {
		if e.ctx == nil {
			for i := 0; i < m; i++ {
				eval(i)
			}
			return
		}
		for i := 0; i < m; i++ {
			if i%cancelStride == 0 && e.ctx.Err() != nil {
				return
			}
			eval(i)
		}
		return
	}
	if obs.Enabled() {
		obs.Counter("selection.sweep.parallel_batches").Inc()
		obs.Counter("selection.sweep.parallel_moves").Add(int64(m))
	}
	// Dynamic index dealing: workers pull the next move off a shared atomic
	// counter, so expensive moves don't stall a fixed partition.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if e.ctx != nil && e.ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= m {
					return
				}
				eval(i)
			}
		}()
	}
	wg.Wait()
}
