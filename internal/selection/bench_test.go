package selection

import (
	"runtime"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/gain"
	"freshsource/internal/stats"
	"freshsource/internal/timeline"
)

// The selection benchmarks run the hot path end to end on the real Profit
// oracle over a generated dataset with ≥64 candidates, comparing the
// historical sequential path ("seq": full evaluation per probe) against
// the accelerated ones ("incr": cached-state incremental probes;
// "incr+cache": plus set-keyed memoization; "parallel+incr": plus fanned
// sweeps — a no-op on single-core runners). All variants return identical
// Results; the benchmark measures wall clock only.

type benchEnv struct {
	profit *gain.Profit
	n      int
}

var benchCache *benchEnv

func benchProblem(b *testing.B) *benchEnv {
	b.Helper()
	if benchCache != nil {
		return benchCache
	}
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 6
	cfg.Categories = 4
	cfg.NumSources = 64
	cfg.Horizon = 160
	cfg.T0 = 100
	cfg.Scale = 0.35
	cfg.Seed = 5
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ticks := []timeline.Tick{110, 125, 140, 155}
	est, err := estimate.New(d.World, d.Sources, d.T0, 155, nil)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := gain.NewSharedItemCost(est, 10)
	if err != nil {
		b.Fatal(err)
	}
	p, err := gain.NewProfit(est, ticks, gain.Linear{Metric: gain.Coverage}, cm)
	if err != nil {
		b.Fatal(err)
	}
	// A light cost term grows deeper selections, exercising the sweeps on
	// realistic set sizes rather than stopping after a handful of rounds.
	p.CostWeight = 0.3
	benchCache = &benchEnv{profit: p, n: est.NumCandidates()}
	return benchCache
}

// fullOracle hides the incremental methods of the profit oracle, forcing
// the historical full-evaluation path.
type fullOracle struct{ p *gain.Profit }

func (o fullOracle) Value(set []int) float64 { return o.p.Value(set) }
func (o fullOracle) Feasible(set []int) bool { return o.p.Feasible(set) }

// benchVariants returns oracle factories: the cache variant builds a fresh
// cache per run so every iteration measures a cold-cache run.
func benchVariants(e *benchEnv) []struct {
	name   string
	oracle func() Oracle
	opts   []Option
} {
	return []struct {
		name   string
		oracle func() Oracle
		opts   []Option
	}{
		{"seq", func() Oracle { return fullOracle{e.profit} }, nil},
		// incr and parallel+incr are gated pairwise against each other
		// (benchjson -require-faster in the multicore profile), so they
		// run back-to-back: adjacent windows share the same host-load
		// weather, keeping the comparison about the code.
		{"incr", func() Oracle { return e.profit }, nil},
		{"parallel+incr", func() Oracle { return e.profit }, []Option{Parallel(-1)}},
		{"incr+cache", func() Oracle { return Cached(e.profit) }, nil},
	}
}

func BenchmarkGreedy(b *testing.B) {
	e := benchProblem(b)
	for _, v := range benchVariants(e) {
		b.Run(v.name, func(b *testing.B) {
			// Collected heap at the start of every variant: the variants
			// are compared pairwise (benchjson -require-faster), and GC
			// assist debt inherited from the previous variant's garbage
			// would bias whichever one happens to run later.
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := Greedy(v.oracle(), e.n, v.opts...)
				if len(r.Set) == 0 {
					b.Fatal("greedy selected nothing")
				}
			}
		})
	}
}

func BenchmarkGRASP(b *testing.B) {
	e := benchProblem(b)
	for _, v := range benchVariants(e) {
		b.Run(v.name, func(b *testing.B) {
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := GRASP(v.oracle(), e.n, 3, 2, stats.NewRNG(17), v.opts...)
				if len(r.Set) == 0 {
					b.Fatal("grasp selected nothing")
				}
			}
		})
	}
}
