package selection_test

import (
	"fmt"
	"sort"

	"freshsource/internal/matroid"
	"freshsource/internal/selection"
	"freshsource/internal/stats"
)

// demoOracle is a tiny weighted-coverage objective: candidate 0 covers
// items {0,1}, candidate 1 covers {2,3}, candidate 2 covers everything but
// costs more than it adds.
type demoOracle struct{}

func (demoOracle) Value(set []int) float64 {
	covered := map[int]bool{}
	var cost float64
	covers := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	costs := []float64{0.5, 0.5, 3.5}
	for _, c := range set {
		for _, it := range covers[c] {
			covered[it] = true
		}
		cost += costs[c]
	}
	return float64(len(covered)) - cost
}

func (demoOracle) Feasible([]int) bool { return true }

// MaxSub is Algorithm 1 of the paper: local search with add/delete moves
// and a complement check.
func ExampleMaxSub() {
	r := selection.MaxSub(demoOracle{}, 3, 0.1)
	sort.Ints(r.Set)
	fmt.Println(r.Set, r.Value)
	// Output: [0 1] 3
}

// GRASP(κ=1, r=1) degenerates to deterministic hill climbing.
func ExampleGRASP() {
	r := selection.GRASP(demoOracle{}, 3, 1, 1, stats.NewRNG(1))
	sort.Ints(r.Set)
	fmt.Println(r.Set, r.Value)
	// Output: [0 1] 3
}

// The varying-frequency constraint of Definition 4: candidates 0,1 are two
// frequency versions of one source, candidates 2,3 of another; at most one
// version per source may be selected.
func ExampleMatroidMax() {
	pm, _ := matroid.OnePerClass([]int{0, 0, 1, 1})
	r := selection.MatroidMax(demoOracle2{}, 4, []matroid.Matroid{pm}, 0.1)
	sort.Ints(r.Set)
	fmt.Println(r.Set)
	// Output: [0 2]
}

type demoOracle2 struct{}

func (demoOracle2) Value(set []int) float64 {
	covered := map[int]bool{}
	var cost float64
	covers := [][]int{{0, 1}, {0}, {2, 3}, {2}}
	costs := []float64{0.2, 0.1, 0.2, 0.1}
	for _, c := range set {
		for _, it := range covers[c] {
			covered[it] = true
		}
		cost += costs[c]
	}
	return float64(len(covered)) - cost
}

func (demoOracle2) Feasible([]int) bool { return true }
