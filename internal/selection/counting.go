package selection

import (
	"sync/atomic"
	"time"

	"freshsource/internal/obs"
)

// CountingOracle wraps an Oracle and counts every Value and Feasible
// evaluation explicitly, so call accounting never depends on the wrapped
// oracle volunteering a counter. Counts are atomic: a CountingOracle may
// be shared by concurrent algorithm runs.
//
// Every algorithm in this package wraps its oracle with Count on entry, so
// Result.OracleCalls is always exact — including for oracles that know
// nothing about counting.
type CountingOracle struct {
	inner    Oracle
	value    atomic.Int64
	feasible atomic.Int64

	// obs handles resolved at wrap time; nil (no-op) when telemetry is
	// disabled.
	obsValue    *obs.CounterVar
	obsFeasible *obs.CounterVar
}

// Count wraps f in a CountingOracle. Wrapping a CountingOracle returns it
// unchanged, so nested algorithm calls (e.g. MatroidMax running
// MatroidLocalSearch) share one running count and delta accounting stays
// exact.
func Count(f Oracle) *CountingOracle {
	if c, ok := f.(*CountingOracle); ok {
		return c
	}
	return &CountingOracle{
		inner:       f,
		obsValue:    obs.Counter("selection.oracle.value_calls"),
		obsFeasible: obs.Counter("selection.oracle.feasible_calls"),
	}
}

// Value implements Oracle, counting the evaluation.
func (c *CountingOracle) Value(set []int) float64 {
	c.value.Add(1)
	c.obsValue.Add(1)
	return c.inner.Value(set)
}

// Feasible implements Oracle, counting the check.
func (c *CountingOracle) Feasible(set []int) bool {
	c.feasible.Add(1)
	c.obsFeasible.Add(1)
	return c.inner.Feasible(set)
}

// IncrementalOracle is an Oracle that can probe single-candidate additions
// against cached set state — the access pattern of every greedy-style
// sweep. gain.Profit implements it by layering the candidate's signatures
// on cached unions instead of re-unioning the whole set.
type IncrementalOracle interface {
	Oracle
	// BeginAdd caches evaluation state for set; it may return nil to
	// decline (callers then fall back to full Value probes). The returned
	// state must be immutable: parallel sweeps issue concurrent ValueAdd
	// probes against it.
	BeginAdd(set []int) any
	// ValueAdd returns Value(set ∪ {x}) using the cached state, bit-identical
	// to the full evaluation. x must not be in the state's set.
	ValueAdd(state any, x int) float64
}

// tryBeginAdd returns add-probe state for set when the wrapped oracle
// supports incremental evaluation.
func (c *CountingOracle) tryBeginAdd(set []int) (any, bool) {
	io, ok := c.inner.(IncrementalOracle)
	if !ok {
		return nil, false
	}
	st := io.BeginAdd(set)
	if st == nil {
		return nil, false
	}
	return st, true
}

// valueAdd counts an incremental probe exactly like the Value evaluation
// it replaces, keeping OracleCalls identical across the two paths.
func (c *CountingOracle) valueAdd(state any, x int) float64 {
	c.value.Add(1)
	c.obsValue.Add(1)
	return c.inner.(IncrementalOracle).ValueAdd(state, x)
}

// Calls returns the number of Value evaluations so far.
func (c *CountingOracle) Calls() int { return int(c.value.Load()) }

// FeasibleCalls returns the number of Feasible checks so far.
func (c *CountingOracle) FeasibleCalls() int { return int(c.feasible.Load()) }

// Unwrap returns the wrapped oracle.
func (c *CountingOracle) Unwrap() Oracle { return c.inner }

// runTrace carries the per-run accounting every algorithm shares: the
// counting oracle, its call count at entry (for delta accounting under
// nesting), the wall-clock start, and the obs span timing the run.
type runTrace struct {
	co     *CountingOracle
	calls0 int
	start  time.Time
	span   obs.Span
	runs   *obs.CounterVar
}

// traceRun begins a run of the named algorithm: wraps the oracle and opens
// the "selection.<alg>.seconds" span.
func traceRun(f Oracle, alg string) (*CountingOracle, runTrace) {
	co := Count(f)
	return co, runTrace{
		co:     co,
		calls0: co.Calls(),
		start:  time.Now(),
		span:   obs.Start("selection." + alg + ".seconds"),
		runs:   obs.Counter("selection." + alg + ".runs"),
	}
}

// finish closes the run and assembles its Result.
func (rt runTrace) finish(set []int, value float64) Result {
	rt.span.End()
	rt.runs.Add(1)
	return Result{
		Set:         append([]int(nil), set...),
		Value:       value,
		OracleCalls: rt.co.Calls() - rt.calls0,
		Duration:    time.Since(rt.start),
	}
}

// finishErr closes a run that stopped early, recording err (ErrCanceled)
// alongside the last fully-completed state.
func (rt runTrace) finishErr(set []int, value float64, err error) Result {
	obs.Counter("selection.canceled").Inc()
	r := rt.finish(set, value)
	r.Err = err
	return r
}
