package selection

import (
	"sync/atomic"
	"time"

	"freshsource/internal/obs"
)

// CountingOracle wraps an Oracle and counts every Value and Feasible
// evaluation explicitly, so call accounting never depends on the wrapped
// oracle volunteering a counter. Counts are atomic: a CountingOracle may
// be shared by concurrent algorithm runs.
//
// Every algorithm in this package wraps its oracle with Count on entry, so
// Result.OracleCalls is always exact — including for oracles that know
// nothing about counting.
type CountingOracle struct {
	inner    Oracle
	value    atomic.Int64
	feasible atomic.Int64

	// obs handles resolved at wrap time; nil (no-op) when telemetry is
	// disabled.
	obsValue    *obs.CounterVar
	obsFeasible *obs.CounterVar
}

// Count wraps f in a CountingOracle. Wrapping a CountingOracle returns it
// unchanged, so nested algorithm calls (e.g. MatroidMax running
// MatroidLocalSearch) share one running count and delta accounting stays
// exact.
func Count(f Oracle) *CountingOracle {
	if c, ok := f.(*CountingOracle); ok {
		return c
	}
	return &CountingOracle{
		inner:       f,
		obsValue:    obs.Counter("selection.oracle.value_calls"),
		obsFeasible: obs.Counter("selection.oracle.feasible_calls"),
	}
}

// Value implements Oracle, counting the evaluation.
func (c *CountingOracle) Value(set []int) float64 {
	c.value.Add(1)
	c.obsValue.Add(1)
	return c.inner.Value(set)
}

// Feasible implements Oracle, counting the check.
func (c *CountingOracle) Feasible(set []int) bool {
	c.feasible.Add(1)
	c.obsFeasible.Add(1)
	return c.inner.Feasible(set)
}

// Calls returns the number of Value evaluations so far.
func (c *CountingOracle) Calls() int { return int(c.value.Load()) }

// FeasibleCalls returns the number of Feasible checks so far.
func (c *CountingOracle) FeasibleCalls() int { return int(c.feasible.Load()) }

// Unwrap returns the wrapped oracle.
func (c *CountingOracle) Unwrap() Oracle { return c.inner }

// runTrace carries the per-run accounting every algorithm shares: the
// counting oracle, its call count at entry (for delta accounting under
// nesting), the wall-clock start, and the obs span timing the run.
type runTrace struct {
	co     *CountingOracle
	calls0 int
	start  time.Time
	span   obs.Span
	runs   *obs.CounterVar
}

// traceRun begins a run of the named algorithm: wraps the oracle and opens
// the "selection.<alg>.seconds" span.
func traceRun(f Oracle, alg string) (*CountingOracle, runTrace) {
	co := Count(f)
	return co, runTrace{
		co:     co,
		calls0: co.Calls(),
		start:  time.Now(),
		span:   obs.Start("selection." + alg + ".seconds"),
		runs:   obs.Counter("selection." + alg + ".runs"),
	}
}

// finish closes the run and assembles its Result.
func (rt runTrace) finish(set []int, value float64) Result {
	rt.span.End()
	rt.runs.Add(1)
	return Result{
		Set:         append([]int(nil), set...),
		Value:       value,
		OracleCalls: rt.co.Calls() - rt.calls0,
		Duration:    time.Since(rt.start),
	}
}
