package selection

import (
	"os"
	"runtime"
	"testing"

	"freshsource/internal/dataset"
	"freshsource/internal/estimate"
	"freshsource/internal/gain"
	"freshsource/internal/timeline"
)

// The Scale bench family measures selection at paper-regime candidate
// counts on the GDELT-like generator: 64 and 1k candidates in every run,
// plus the full 15,275-source corpus of the paper when BENCH_SCALE=full
// (the Makefile's bench targets plumb the knob through). The fixtures keep
// the domain small (4 locations × 2 event types) so the entity universe
// stays a handful of bitset words and the benchmarks isolate what actually
// grows with the corpus — the candidate sweeps — rather than re-measuring
// per-probe signature width, which BenchmarkQualityMultiAdd already covers.
//
// All sub-benchmarks report allocations: BenchmarkScaleProbe pins the
// zero-alloc steady-state probe, and ScaleCELF's allocs/op would surface a
// regression to per-round scratch churn.

type scaleEnv struct {
	profit *gain.Profit
	n      int
}

var scaleCache = map[int]*scaleEnv{}

var scaleSizes = []struct {
	label   string
	sources int
	full    bool // only run when BENCH_SCALE=full
}{
	{"64", 64, false},
	{"1k", 1000, false},
	{"15k", 15275, true},
}

// scaleProblem builds (once per size, cached across benchmarks) a profit
// oracle over a GDELT-like corpus with the requested candidate count.
func scaleProblem(b *testing.B, sources int) *scaleEnv {
	b.Helper()
	if e, ok := scaleCache[sources]; ok {
		return e
	}
	cfg := dataset.GDELTConfig{
		Locations:  4,
		EventTypes: 2,
		NumSources: sources,
		Horizon:    22,
		T0:         15,
		Scale:      0.5,
		Seed:       2014,
	}
	d, err := dataset.GenerateGDELT(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ticks := []timeline.Tick{17, 19, 21}
	est, err := estimate.New(d.World, d.Sources, d.T0, 21, nil)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := gain.NewSharedItemCost(est, 10)
	if err != nil {
		b.Fatal(err)
	}
	p, err := gain.NewProfit(est, ticks, gain.Linear{Metric: gain.Coverage}, cm)
	if err != nil {
		b.Fatal(err)
	}
	// The cost term penalizes redundant picks, and the budget bounds the
	// selection to a few dozen sources regardless of corpus size — the
	// paper's regime is a small acquisition set chosen from a huge
	// candidate pool, not ingesting the pool. (Normalized per-item cost is
	// ~1/n, so a bare CostWeight would stop a 64-source solve early yet
	// let a 15k-source solve run thousands of rounds deep.)
	p.CostWeight = 0.3
	p.Budget = 32 / float64(est.NumCandidates())
	e := &scaleEnv{profit: p, n: est.NumCandidates()}
	scaleCache[sources] = e
	return e
}

func skipUnlessFull(b *testing.B) {
	b.Helper()
	if os.Getenv("BENCH_SCALE") != "full" {
		b.Skip("15k corpus benchmarks run with BENCH_SCALE=full")
	}
}

// BenchmarkScaleCELF runs the full lazy-greedy solve end to end. The paper
// target: the 15k-candidate solve completes in under a second. The seq
// variant is the purely lazy single-threaded solve; parallel fans the
// singleton sweep and speculative stale-entry recomputes across all cores
// through the persistent sweep pool (default speculation stride). The
// multi-core bench profile gates parallel strictly faster than seq at 15k
// via benchjson -require-faster.
func BenchmarkScaleCELF(b *testing.B) {
	variants := []struct {
		name string
		opts []Option
	}{
		{"seq", nil},
		{"parallel", []Option{Parallel(-1)}},
	}
	for _, s := range scaleSizes {
		for _, v := range variants {
			b.Run(s.label+"/"+v.name, func(b *testing.B) {
				if s.full {
					skipUnlessFull(b)
				}
				e := scaleProblem(b, s.sources)
				// Start from a collected heap so the later-listed variant
				// doesn't inherit the earlier one's garbage (GC assist time
				// would bias an otherwise identical pair).
				runtime.GC()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r := LazyGreedy(e.profit, e.n, v.opts...)
					if len(r.Set) == 0 {
						b.Fatal("celf selected nothing")
					}
				}
			})
		}
	}
}

var scaleProbeSink float64

// BenchmarkCachedOracleValueAdd pins the CachedOracle probe path: a
// memoized hit keys by the incremental membership hash and compares by
// merge-walk, so steady-state probes against a warm cache stay
// allocation-free (the old canonical-key-string scheme allocated a fresh
// key per lookup).
func BenchmarkCachedOracleValueAdd(b *testing.B) {
	const n = 256
	c := Cached(&incrWC{wcOracle: *randomWC(n, 5)})
	st := c.BeginAdd([]int{1, 2, 3})
	for x := 4; x < n; x++ {
		c.ValueAdd(st, x) // prime every probed superset
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scaleProbeSink = c.ValueAdd(st, 4+i%(n-4))
	}
}

// BenchmarkScaleProbe measures one steady-state incremental probe — the
// operation CELF and the local searches issue tens of thousands of times
// per solve — against a warmed set state. Targets: under 2µs and zero
// allocations per probe.
func BenchmarkScaleProbe(b *testing.B) {
	for _, s := range scaleSizes {
		b.Run(s.label, func(b *testing.B) {
			if s.full {
				skipUnlessFull(b)
			}
			e := scaleProblem(b, s.sources)
			set := []int{0, 1, 2, 3}
			st := e.profit.BeginAdd(set)
			// Warm the per-tick miss tables so iterations measure the
			// steady state rather than the one-time lazy build.
			scaleProbeSink = e.profit.ValueAdd(st, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scaleProbeSink = e.profit.ValueAdd(st, 4+i%(e.n-4))
			}
		})
	}
}
