package selection

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"freshsource/internal/matroid"
	"freshsource/internal/stats"
)

// cancelAfter cancels the bound context on its limit-th Value evaluation,
// simulating a deadline firing mid-run. Safe for concurrent sweeps.
type cancelAfter struct {
	inner  Oracle
	cancel context.CancelFunc
	limit  int64
	calls  atomic.Int64
}

func (o *cancelAfter) Value(set []int) float64 {
	if o.calls.Add(1) == o.limit {
		o.cancel()
	}
	return o.inner.Value(set)
}

func (o *cancelAfter) Feasible(set []int) bool { return o.inner.Feasible(set) }

// runAllCtx mirrors runAll with a context option attached.
func runAllCtx(f Oracle, n int, ctx context.Context, extra ...Option) []Result {
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i / 2
	}
	pm, err := matroid.OnePerClass(classOf)
	if err != nil {
		panic(err)
	}
	opts := append([]Option{Context(ctx)}, extra...)
	return []Result{
		Greedy(f, n, opts...),
		MaxSub(f, n, 0.05, opts...),
		MatroidMax(f, n, []matroid.Matroid{pm}, 0.05, opts...),
		GRASP(f, n, 3, 5, stats.NewRNG(42), opts...),
		LazyGreedy(f, n, opts...),
		BudgetedGreedy(f, n, func(i int) float64 { return float64(i%4) + 1 }, opts...),
	}
}

// TestContextNoopWhenUncanceled pins that attaching a live context changes
// nothing: same sets, bit-identical values, identical oracle-call counts.
func TestContextNoopWhenUncanceled(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		o := randomWC(24, seed)
		plain := runAll(o, 24)
		withCtx := runAllCtx(o, 24, context.Background())
		requireIdentical(t, "live-context", plain, withCtx)
		for i, r := range withCtx {
			if r.Err != nil {
				t.Errorf("%s: unexpected Err %v under a live context", algNames[i], r.Err)
			}
		}
	}
}

// TestPreCanceledContext pins the fast-exit path: a context canceled before
// the run starts yields ErrCanceled with at most the empty-set evaluation.
func TestPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := randomWC(24, 1)
	for i, r := range runAllCtx(o, 24, ctx) {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Errorf("%s: Err = %v, want ErrCanceled", algNames[i], r.Err)
		}
		if len(r.Set) != 0 {
			t.Errorf("%s: pre-canceled run selected %v", algNames[i], r.Set)
		}
	}
}

// TestCancelMidRunConsistency is the no-partial-argmax invariant: however a
// cancellation lands relative to a sweep, the returned Set and Value form a
// consistent pair — Value is the oracle's exact value of Set — and the run
// reports ErrCanceled unless it finished first.
func TestCancelMidRunConsistency(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, limit := range []int64{1, 2, 5, 17, 60, 250} {
			plain := randomWC(24, seed)
			for alg := 0; alg < 6; alg++ {
				ctx, cancel := context.WithCancel(context.Background())
				o := &cancelAfter{inner: plain, cancel: cancel, limit: limit}
				res := runAlgCtx(alg, o, 24, ctx)
				cancel()
				if res.Err != nil && !errors.Is(res.Err, ErrCanceled) {
					t.Fatalf("%s limit=%d: Err = %v", algNames[alg], limit, res.Err)
				}
				if got, want := res.Value, plain.Value(res.Set); got != want {
					t.Errorf("%s limit=%d: Value %v inconsistent with f(Set)=%v (set %v, err %v)",
						algNames[alg], limit, got, want, res.Set, res.Err)
				}
			}
		}
	}
}

// TestCancelMidRunParallel exercises cancellation against the parallel sweep
// engine (workers observe the context between move pulls) under the race
// detector.
func TestCancelMidRunParallel(t *testing.T) {
	plain := randomWC(32, 7)
	for _, limit := range []int64{3, 40, 400} {
		ctx, cancel := context.WithCancel(context.Background())
		o := &cancelAfter{inner: plain, cancel: cancel, limit: limit}
		res := GRASP(o, 32, 3, 8, stats.NewRNG(7), Context(ctx), Parallel(8))
		cancel()
		if got, want := res.Value, plain.Value(res.Set); got != want {
			t.Errorf("limit=%d: Value %v inconsistent with f(Set)=%v", limit, got, want)
		}
	}
}

// runAlgCtx runs the alg-th algorithm of the runAll order individually so
// each gets a fresh cancel oracle.
func runAlgCtx(alg int, f Oracle, n int, ctx context.Context) Result {
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i / 2
	}
	pm, err := matroid.OnePerClass(classOf)
	if err != nil {
		panic(err)
	}
	opt := Context(ctx)
	switch alg {
	case 0:
		return Greedy(f, n, opt)
	case 1:
		return MaxSub(f, n, 0.05, opt)
	case 2:
		return MatroidMax(f, n, []matroid.Matroid{pm}, 0.05, opt)
	case 3:
		return GRASP(f, n, 3, 5, stats.NewRNG(42), opt)
	case 4:
		return LazyGreedy(f, n, opt)
	case 5:
		return BudgetedGreedy(f, n, func(i int) float64 { return float64(i%4) + 1 }, opt)
	}
	panic("bad alg")
}
