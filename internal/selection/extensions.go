package selection

import (
	"container/heap"
	"math"

	"freshsource/internal/obs"
)

// This file extends the paper's algorithm suite with two standard
// submodular-optimization tools that a production deployment wants:
//
//   - LazyGreedy (CELF): greedy with lazy marginal re-evaluation. For
//     monotone submodular objectives the marginal gain of a candidate can
//     only shrink as the solution grows, so a stale upper bound from an
//     earlier round often suffices to skip re-evaluation. Same output as
//     Greedy on submodular objectives, far fewer oracle calls.
//
//   - BudgetedGreedy: the cost-benefit greedy for a knapsack budget βc
//     (Definition 3's constraint, which the paper's experiments leave
//     unconstrained): grow by the best marginal-profit-per-unit-cost
//     candidate that fits, and return the better of that solution and the
//     best feasible singleton — the classic (1−1/√e)-style guarantee
//     construction.

// marginalItem is a priority-queue entry for lazy greedy.
type marginalItem struct {
	idx     int
	gain    float64
	round   int // the solution size at which gain was computed
	heapIdx int
}

type marginalHeap []*marginalItem

func (h marginalHeap) Len() int            { return len(h) }
func (h marginalHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h marginalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *marginalHeap) Push(x interface{}) { *h = append(*h, x.(*marginalItem)) }
func (h *marginalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// LazyGreedy runs the accelerated greedy. It is exact for Greedy's move
// sequence when the objective is monotone submodular; on non-submodular
// objectives it is a heuristic (stale bounds may hide a better candidate).
func LazyGreedy(f Oracle, n int, opts ...Option) Result {
	co, rt := traceRun(f, "lazygreedy")
	stale := obs.Counter("selection.lazygreedy.stale_recomputes")
	ev := newEvaluator(opts)
	var set []int
	cur := co.Value(set)

	// Initial bounds: one full singleton sweep.
	vals := make([]float64, n)
	ok := make([]bool, n)
	probe := beginAdds(co, set)
	ev.sweep(n, func(x int) {
		ok[x] = false
		cand := with(set, x)
		if !co.Feasible(cand) {
			return
		}
		vals[x] = probe.value(cand, x)
		ok[x] = true
	})
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}
	h := make(marginalHeap, 0, n)
	for x := 0; x < n; x++ {
		if ok[x] {
			h = append(h, &marginalItem{idx: x, gain: vals[x] - cur, round: 0})
		}
	}
	heap.Init(&h)

	round := 0
	for h.Len() > 0 {
		if ev.canceled() {
			return rt.finishErr(set, co.Value(set), ErrCanceled)
		}
		top := h[0]
		if top.gain <= 1e-12 {
			break // even the most optimistic bound does not improve
		}
		if top.round != round {
			// Stale bound: recompute against the current solution.
			cand := with(set, top.idx)
			if !co.Feasible(cand) {
				heap.Pop(&h)
				continue
			}
			top.gain = probe.value(cand, top.idx) - cur
			top.round = round
			stale.Inc()
			heap.Fix(&h, 0)
			continue
		}
		// Fresh and on top: take it.
		heap.Pop(&h)
		set = with(set, top.idx)
		cur += top.gain
		round++
		probe = beginAdds(co, set)
	}
	// cur accumulated incrementally; report the oracle's exact value.
	cur = co.Value(set)
	return rt.finish(set, cur)
}

// BudgetedGreedy maximizes under the oracle's feasibility (budget)
// constraint using cost-per-unit marginals, returning the better of the
// ratio-greedy solution and the best feasible singleton. cost reports each
// candidate's (rescaled) cost.
func BudgetedGreedy(f Oracle, n int, cost func(int) float64, opts ...Option) Result {
	co, rt := traceRun(f, "budgeted")
	ev := newEvaluator(opts)

	// Ratio greedy.
	var set []int
	cur := co.Value(set)
	taken := make([]bool, n)
	vals := make([]float64, n)
	ok := make([]bool, n)
	for {
		probe := beginAdds(co, set)
		ev.sweep(n, func(x int) {
			ok[x] = false
			if taken[x] {
				return
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				return
			}
			vals[x] = probe.value(cand, x)
			ok[x] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestIdx := -1
		bestRatio := 0.0
		bestVal := cur
		for x := 0; x < n; x++ {
			if !ok[x] {
				continue
			}
			delta := vals[x] - cur
			if delta <= 0 {
				continue
			}
			c := cost(x)
			ratio := delta
			if c > 0 {
				ratio = delta / c
			} else {
				ratio = math.Inf(1)
			}
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestRatio, bestVal = x, ratio, vals[x]
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		set = with(set, bestIdx)
		cur = bestVal
	}

	// Best feasible singleton.
	singleton, sVal := bestSingleton(co, n, ev)
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}
	if singleton != nil && sVal > cur {
		set, cur = singleton, sVal
	}
	return rt.finish(set, cur)
}
