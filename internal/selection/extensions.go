package selection

import (
	"math"

	"freshsource/internal/obs"
)

// This file extends the paper's algorithm suite with two standard
// submodular-optimization tools that a production deployment wants:
//
//   - LazyGreedy (CELF): greedy with lazy marginal re-evaluation. For
//     monotone submodular objectives the marginal gain of a candidate can
//     only shrink as the solution grows, so a stale upper bound from an
//     earlier round often suffices to skip re-evaluation. Byte-identical
//     output to Greedy on submodular objectives, far fewer oracle calls.
//
//   - BudgetedGreedy: the cost-benefit greedy for a knapsack budget βc
//     (Definition 3's constraint, which the paper's experiments leave
//     unconstrained): grow by the best marginal-profit-per-unit-cost
//     candidate that fits, and return the better of that solution and the
//     best feasible singleton — the classic (1−1/√e)-style guarantee
//     construction.

// celfEntry is one priority-queue entry of the CELF lazy greedy: the last
// oracle value observed for set ∪ {idx} and the marginal gain it implied,
// stamped with the solution size (round) it was computed at.
type celfEntry struct {
	idx   int32
	round int32
	gain  float64
	val   float64
}

// celfBefore is the CELF heap order. The invariant that makes lazy
// evaluation exact (see DESIGN.md): diminishing marginal gains make every
// stale gain an upper bound on the candidate's current gain, so the true
// best candidate can never hide below a fresh top. Priority is
//
//	gain desc → round asc → val desc → idx asc
//
// gain desc surfaces the most promising bound. round asc breaks gain ties
// stale-before-fresh: a stale bound tied with a fresh gain might still
// cover a candidate Greedy would prefer, so it must be recomputed before
// the fresh entry may win. Among fresh entries (equal round) gain ties are
// broken by val desc then idx asc, because Greedy's sequential argmax
// compares oracle values, not gains — two values that round to the same
// gain against the current solution value are still distinct values, and
// equal values resolve to the lowest index (Greedy's strict `>` scan).
func celfBefore(a, b celfEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.round != b.round {
		return a.round < b.round
	}
	if a.val != b.val {
		return a.val > b.val
	}
	return a.idx < b.idx
}

// celfHeap is a value-typed binary max-heap under celfBefore (no
// container/heap interface boxing on the hot pop/fix path).
type celfHeap []celfEntry

func (h celfHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && celfBefore(h[r], h[l]) {
			best = r
		}
		if !celfBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h celfHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// pop removes and returns the top entry.
func (h *celfHeap) pop() celfEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).siftDown(0)
	return top
}

func (h celfHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !celfBefore(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// push inserts e, restoring the heap order.
func (h *celfHeap) push(e celfEntry) {
	*h = append(*h, e)
	(*h).siftUp(len(*h) - 1)
}

// LazyGreedy is the CELF-accelerated greedy: plain Greedy's move sequence
// driven by a max-heap of stale marginal gains instead of a full candidate
// rescan per round. On monotone submodular objectives (and any objective
// with diminishing marginal gains, such as profit = submodular gain −
// additive cost) the result is byte-identical to Greedy — same Set, same
// Value — at a fraction of the oracle calls; on objectives without
// diminishing gains it is a heuristic (a stale bound may hide a better
// candidate). Feasibility must be downward-closed (supersets of an
// infeasible set stay infeasible — true of the additive budget and of
// matroid constraints), as rejected candidates are dropped for good.
//
// The initial singleton sweep fans across workers like Greedy's, written
// straight into per-worker heap shards (shardheap.go); stale entries are
// then re-evaluated either purely lazily — one sequential heap pop at a
// time — or speculatively in concurrent batches of the top-K stale
// entries (the Speculative option; on by default with Workers > 1).
// Adoption is always sequential in Greedy's exact argmax order, so Set
// and Value are byte-identical to Greedy at any worker count and any
// speculation stride; OracleCalls is identical on purely lazy runs and
// may grow by the speculation margin otherwise (reported via the
// selection.lazygreedy.speculative_{recomputes,wasted} counters).
func LazyGreedy(f Oracle, n int, opts ...Option) Result {
	co, rt := traceRun(f, "lazygreedy")
	stale := obs.Counter("selection.lazygreedy.stale_recomputes")
	adds := obs.Counter("selection.lazygreedy.adds")
	specRecomputes := obs.Counter("selection.lazygreedy.speculative_recomputes")
	specWasted := obs.Counter("selection.lazygreedy.speculative_wasted")
	ev := newEvaluator(opts)
	defer ev.close()
	var set []int
	cur := co.Value(set)

	// Initial bounds: one full singleton sweep — exactly Greedy's first
	// round, so the heap starts from the same values Greedy scans — built
	// shard-concurrently with no global scratch arrays or serial heapify.
	probe := beginAdds(co, set)
	h := buildShardHeap(ev, n, cur, func(x int) (float64, bool) {
		cand := with(set, x)
		if !co.Feasible(cand) {
			return 0, false
		}
		return probe.value(cand, x), true
	})
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}

	// batch carries one speculative round-trip's stale entries (entry,
	// origin shard, recompute outcome); reused across batches.
	type specProbe struct {
		e     celfEntry
		shard int
		ok    bool
	}
	var batch []specProbe
	// specPending counts speculative recomputes since the last adoption.
	// Exactly one of them becomes the next adopted argmax (every fresh
	// entry at the current round came from a batch); the rest are the
	// speculation waste charged to specWasted at adoption or exit.
	specPending := 0

	var round int32
	for h.len() > 0 {
		if ev.canceled() {
			// cur is the oracle-exact value of set after every completed
			// move, so the canceled pair is already consistent.
			return rt.finishErr(set, cur, ErrCanceled)
		}
		s, top := h.top()
		if top.gain <= 0 {
			// Even the most optimistic bound does not improve: Greedy's
			// stopping condition (no value strictly above cur — a nonzero
			// float difference never rounds to zero, so gain > 0 ⟺ val > cur).
			break
		}
		if top.round == round {
			// Fresh and on top: this is Greedy's argmax. Adopt its oracle
			// value directly (never cur + gain, which would accumulate
			// rounding).
			e := h.pop(s)
			set = with(set, int(e.idx))
			cur = e.val
			round++
			adds.Inc()
			if specPending > 0 {
				specWasted.Add(int64(specPending - 1))
				specPending = 0
			}
			probe = beginAdds(co, set)
			continue
		}
		if ev.spec < 2 {
			// Purely lazy: recompute the stale top against the current
			// solution and restore the heap order. Infeasible candidates
			// leave for good (downward-closed feasibility).
			cand := with(set, int(top.idx))
			if !co.Feasible(cand) {
				h.pop(s)
				continue
			}
			v := probe.value(cand, int(top.idx))
			top.val = v
			top.gain = v - cur
			top.round = round
			stale.Inc()
			h.fix(s)
			continue
		}
		// Speculative batch: pop the top-K stale entries — the candidates
		// lazy evaluation would most plausibly touch next — recompute their
		// probes concurrently, and reinsert with fresh bounds. Adoption
		// still happens sequentially on subsequent iterations, so the
		// argmax is exactly the lazy path's; speculation only spends extra
		// probes on entries whose recompute turns out not to decide the
		// round.
		batch = batch[:0]
		for len(batch) < ev.spec && h.len() > 0 {
			bs, bt := h.top()
			if bt.round == round || bt.gain <= 0 {
				break
			}
			batch = append(batch, specProbe{e: h.pop(bs), shard: bs})
		}
		ev.sweepEager(len(batch), func(k int) {
			p := &batch[k]
			p.ok = false
			cand := with(set, int(p.e.idx))
			if !co.Feasible(cand) {
				return
			}
			v := probe.value(cand, int(p.e.idx))
			p.e.val = v
			p.e.gain = v - cur
			p.e.round = round
			p.ok = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		recomputed := 0
		for k := range batch {
			if batch[k].ok {
				recomputed++
				h.push(batch[k].shard, batch[k].e)
			}
		}
		stale.Add(int64(recomputed))
		specRecomputes.Add(int64(recomputed))
		specPending += recomputed
	}
	if specPending > 0 {
		// Recomputes after the last adoption only confirmed termination.
		specWasted.Add(int64(specPending))
	}
	return rt.finish(set, cur)
}

// BudgetedGreedy maximizes under the oracle's feasibility (budget)
// constraint using cost-per-unit marginals, returning the better of the
// ratio-greedy solution and the best feasible singleton. cost reports each
// candidate's (rescaled) cost.
func BudgetedGreedy(f Oracle, n int, cost func(int) float64, opts ...Option) Result {
	co, rt := traceRun(f, "budgeted")
	ev := newEvaluator(opts)
	defer ev.close()

	// Ratio greedy.
	var set []int
	cur := co.Value(set)
	taken := make([]bool, n)
	vals := make([]float64, n)
	ok := make([]bool, n)
	for {
		probe := beginAdds(co, set)
		ev.sweep(n, func(x int) {
			ok[x] = false
			if taken[x] {
				return
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				return
			}
			vals[x] = probe.value(cand, x)
			ok[x] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestIdx := -1
		bestRatio := 0.0
		bestVal := cur
		for x := 0; x < n; x++ {
			if !ok[x] {
				continue
			}
			delta := vals[x] - cur
			if delta <= 0 {
				continue
			}
			c := cost(x)
			ratio := delta
			if c > 0 {
				ratio = delta / c
			} else {
				ratio = math.Inf(1)
			}
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestRatio, bestVal = x, ratio, vals[x]
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		set = with(set, bestIdx)
		cur = bestVal
	}

	// Best feasible singleton.
	singleton, sVal := bestSingleton(co, n, ev)
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}
	if singleton != nil && sVal > cur {
		set, cur = singleton, sVal
	}
	return rt.finish(set, cur)
}
