package selection

import (
	"math"

	"freshsource/internal/obs"
)

// This file extends the paper's algorithm suite with two standard
// submodular-optimization tools that a production deployment wants:
//
//   - LazyGreedy (CELF): greedy with lazy marginal re-evaluation. For
//     monotone submodular objectives the marginal gain of a candidate can
//     only shrink as the solution grows, so a stale upper bound from an
//     earlier round often suffices to skip re-evaluation. Byte-identical
//     output to Greedy on submodular objectives, far fewer oracle calls.
//
//   - BudgetedGreedy: the cost-benefit greedy for a knapsack budget βc
//     (Definition 3's constraint, which the paper's experiments leave
//     unconstrained): grow by the best marginal-profit-per-unit-cost
//     candidate that fits, and return the better of that solution and the
//     best feasible singleton — the classic (1−1/√e)-style guarantee
//     construction.

// celfEntry is one priority-queue entry of the CELF lazy greedy: the last
// oracle value observed for set ∪ {idx} and the marginal gain it implied,
// stamped with the solution size (round) it was computed at.
type celfEntry struct {
	idx   int32
	round int32
	gain  float64
	val   float64
}

// celfBefore is the CELF heap order. The invariant that makes lazy
// evaluation exact (see DESIGN.md): diminishing marginal gains make every
// stale gain an upper bound on the candidate's current gain, so the true
// best candidate can never hide below a fresh top. Priority is
//
//	gain desc → round asc → val desc → idx asc
//
// gain desc surfaces the most promising bound. round asc breaks gain ties
// stale-before-fresh: a stale bound tied with a fresh gain might still
// cover a candidate Greedy would prefer, so it must be recomputed before
// the fresh entry may win. Among fresh entries (equal round) gain ties are
// broken by val desc then idx asc, because Greedy's sequential argmax
// compares oracle values, not gains — two values that round to the same
// gain against the current solution value are still distinct values, and
// equal values resolve to the lowest index (Greedy's strict `>` scan).
func celfBefore(a, b celfEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	if a.round != b.round {
		return a.round < b.round
	}
	if a.val != b.val {
		return a.val > b.val
	}
	return a.idx < b.idx
}

// celfHeap is a value-typed binary max-heap under celfBefore (no
// container/heap interface boxing on the hot pop/fix path).
type celfHeap []celfEntry

func (h celfHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && celfBefore(h[r], h[l]) {
			best = r
		}
		if !celfBefore(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h celfHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// pop removes and returns the top entry.
func (h *celfHeap) pop() celfEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	(*h).siftDown(0)
	return top
}

// LazyGreedy is the CELF-accelerated greedy: plain Greedy's move sequence
// driven by a max-heap of stale marginal gains instead of a full candidate
// rescan per round. On monotone submodular objectives (and any objective
// with diminishing marginal gains, such as profit = submodular gain −
// additive cost) the result is byte-identical to Greedy — same Set, same
// Value — at a fraction of the oracle calls; on objectives without
// diminishing gains it is a heuristic (a stale bound may hide a better
// candidate). Feasibility must be downward-closed (supersets of an
// infeasible set stay infeasible — true of the additive budget and of
// matroid constraints), as rejected candidates are dropped for good.
//
// The initial singleton sweep fans across workers like Greedy's; every
// subsequent re-evaluation pops the heap sequentially, so Set, Value and
// OracleCalls are all identical at any worker count.
func LazyGreedy(f Oracle, n int, opts ...Option) Result {
	co, rt := traceRun(f, "lazygreedy")
	stale := obs.Counter("selection.lazygreedy.stale_recomputes")
	adds := obs.Counter("selection.lazygreedy.adds")
	ev := newEvaluator(opts)
	var set []int
	cur := co.Value(set)

	// Initial bounds: one full singleton sweep — exactly Greedy's first
	// round, so the heap starts from the same values Greedy scans.
	vals := make([]float64, n)
	ok := make([]bool, n)
	probe := beginAdds(co, set)
	ev.sweep(n, func(x int) {
		ok[x] = false
		cand := with(set, x)
		if !co.Feasible(cand) {
			return
		}
		vals[x] = probe.value(cand, x)
		ok[x] = true
	})
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}
	h := make(celfHeap, 0, n)
	for x := 0; x < n; x++ {
		if ok[x] {
			h = append(h, celfEntry{idx: int32(x), round: 0, gain: vals[x] - cur, val: vals[x]})
		}
	}
	h.init()

	var round int32
	for len(h) > 0 {
		if ev.canceled() {
			// cur is the oracle-exact value of set after every completed
			// move, so the canceled pair is already consistent.
			return rt.finishErr(set, cur, ErrCanceled)
		}
		top := &h[0]
		if top.gain <= 0 {
			// Even the most optimistic bound does not improve: Greedy's
			// stopping condition (no value strictly above cur — a nonzero
			// float difference never rounds to zero, so gain > 0 ⟺ val > cur).
			break
		}
		if top.round != round {
			// Stale bound: recompute against the current solution and
			// restore the heap order. Infeasible candidates leave for good
			// (downward-closed feasibility).
			cand := with(set, int(top.idx))
			if !co.Feasible(cand) {
				h.pop()
				continue
			}
			v := probe.value(cand, int(top.idx))
			top.val = v
			top.gain = v - cur
			top.round = round
			stale.Inc()
			h.siftDown(0)
			continue
		}
		// Fresh and on top: this is Greedy's argmax. Adopt its oracle value
		// directly (never cur + gain, which would accumulate rounding).
		e := h.pop()
		set = with(set, int(e.idx))
		cur = e.val
		round++
		adds.Inc()
		probe = beginAdds(co, set)
	}
	return rt.finish(set, cur)
}

// BudgetedGreedy maximizes under the oracle's feasibility (budget)
// constraint using cost-per-unit marginals, returning the better of the
// ratio-greedy solution and the best feasible singleton. cost reports each
// candidate's (rescaled) cost.
func BudgetedGreedy(f Oracle, n int, cost func(int) float64, opts ...Option) Result {
	co, rt := traceRun(f, "budgeted")
	ev := newEvaluator(opts)

	// Ratio greedy.
	var set []int
	cur := co.Value(set)
	taken := make([]bool, n)
	vals := make([]float64, n)
	ok := make([]bool, n)
	for {
		probe := beginAdds(co, set)
		ev.sweep(n, func(x int) {
			ok[x] = false
			if taken[x] {
				return
			}
			cand := with(set, x)
			if !co.Feasible(cand) {
				return
			}
			vals[x] = probe.value(cand, x)
			ok[x] = true
		})
		if ev.canceled() {
			return rt.finishErr(set, cur, ErrCanceled)
		}
		bestIdx := -1
		bestRatio := 0.0
		bestVal := cur
		for x := 0; x < n; x++ {
			if !ok[x] {
				continue
			}
			delta := vals[x] - cur
			if delta <= 0 {
				continue
			}
			c := cost(x)
			ratio := delta
			if c > 0 {
				ratio = delta / c
			} else {
				ratio = math.Inf(1)
			}
			if bestIdx < 0 || ratio > bestRatio {
				bestIdx, bestRatio, bestVal = x, ratio, vals[x]
			}
		}
		if bestIdx < 0 {
			break
		}
		taken[bestIdx] = true
		set = with(set, bestIdx)
		cur = bestVal
	}

	// Best feasible singleton.
	singleton, sVal := bestSingleton(co, n, ev)
	if ev.canceled() {
		return rt.finishErr(set, cur, ErrCanceled)
	}
	if singleton != nil && sVal > cur {
		set, cur = singleton, sVal
	}
	return rt.finish(set, cur)
}
