package selection

import (
	"math/rand"
	"reflect"
	"testing"

	"freshsource/internal/matroid"
	"freshsource/internal/stats"
)

// wcOracle is a deterministic weighted-coverage oracle safe for concurrent
// use: value = (sum of weights of covered items) − |set|, computed in
// integers until the final conversion, so any evaluation strategy that gets
// the math right is bit-identical. Feasibility caps the set size.
type wcOracle struct {
	covers [][]int // candidate → covered items (each list duplicate-free)
	weight []int
	maxSet int
}

func (o *wcOracle) Value(set []int) float64 {
	seen := make(map[int]bool)
	tot := 0
	for _, c := range set {
		for _, it := range o.covers[c] {
			if !seen[it] {
				seen[it] = true
				tot += o.weight[it]
			}
		}
	}
	return float64(tot) - float64(len(set))
}

func (o *wcOracle) Feasible(set []int) bool { return len(set) <= o.maxSet }

// incrWC layers an incremental path over wcOracle. The state caches the
// covered-item indicator; ValueAdd re-derives the integer total, so the
// result is exactly Value(set ∪ {x}).
type incrWC struct{ wcOracle }

type wcState struct {
	seen []bool
	tot  int
	size int
}

func (o *incrWC) BeginAdd(set []int) any {
	st := &wcState{seen: make([]bool, len(o.weight)), size: len(set)}
	for _, c := range set {
		for _, it := range o.covers[c] {
			if !st.seen[it] {
				st.seen[it] = true
				st.tot += o.weight[it]
			}
		}
	}
	return st
}

func (o *incrWC) ValueAdd(state any, x int) float64 {
	st := state.(*wcState)
	tot := st.tot
	for _, it := range o.covers[x] {
		if !st.seen[it] {
			tot += o.weight[it]
		}
	}
	return float64(tot) - float64(st.size+1)
}

// randomWC builds a seeded random instance with n candidates over a
// 3n-item universe.
func randomWC(n int, seed int64) *wcOracle {
	rng := rand.New(rand.NewSource(seed))
	items := 3 * n
	o := &wcOracle{
		covers: make([][]int, n),
		weight: make([]int, items),
		maxSet: n/3 + 2,
	}
	for i := range o.weight {
		o.weight[i] = 1 + rng.Intn(9)
	}
	for c := 0; c < n; c++ {
		k := 1 + rng.Intn(6)
		seen := make(map[int]bool)
		for len(o.covers[c]) < k {
			it := rng.Intn(items)
			if !seen[it] {
				seen[it] = true
				o.covers[c] = append(o.covers[c], it)
			}
		}
	}
	return o
}

// runAll runs every algorithm on the oracle and returns the results in a
// fixed order. Each algorithm sees its own CountingOracle (wrapped on
// entry), so OracleCalls are per-run.
func runAll(f Oracle, n int, opts ...Option) []Result {
	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = i / 2
	}
	pm, err := matroid.OnePerClass(classOf)
	if err != nil {
		panic(err)
	}
	return []Result{
		Greedy(f, n, opts...),
		MaxSub(f, n, 0.05, opts...),
		MatroidMax(f, n, []matroid.Matroid{pm}, 0.05, opts...),
		GRASP(f, n, 3, 5, stats.NewRNG(42), opts...),
		LazyGreedy(f, n, opts...),
		BudgetedGreedy(f, n, func(i int) float64 { return float64(i%4) + 1 }, opts...),
	}
}

var algNames = []string{"Greedy", "MaxSub", "MatroidMax", "GRASP", "LazyGreedy", "BudgetedGreedy"}

// requireIdentical asserts two result slices match exactly: same sets in
// the same order, bit-identical values, identical oracle-call counts.
func requireIdentical(t *testing.T, label string, want, got []Result) {
	t.Helper()
	for i := range want {
		if !reflect.DeepEqual(want[i].Set, got[i].Set) {
			t.Errorf("%s/%s: set %v != %v", label, algNames[i], got[i].Set, want[i].Set)
		}
		if want[i].Value != got[i].Value {
			t.Errorf("%s/%s: value %v != %v (not bit-identical)", label, algNames[i], got[i].Value, want[i].Value)
		}
		if want[i].OracleCalls != got[i].OracleCalls {
			t.Errorf("%s/%s: oracle calls %d != %d", label, algNames[i], got[i].OracleCalls, want[i].OracleCalls)
		}
	}
}

// TestParallelMatchesSequential pins the deterministic-argmax contract:
// fanning candidate sweeps across workers changes nothing — same sets,
// bit-identical values, identical oracle-call counts — because move values
// land at fixed indices and the reduction runs in the sequential scan
// order. Speculative(-1) keeps LazyGreedy purely lazy, where even its
// probe count is pinned; the speculative path (extra probes, same
// selection) is covered separately below and in TestScaleDeterminism.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		o := randomWC(24, seed)
		seq := runAll(o, 24)
		for _, workers := range []int{2, 4, 7} {
			par := runAll(o, 24, Parallel(workers), Speculative(-1))
			requireIdentical(t, "parallel", seq, par)
		}
	}
}

// TestSpeculativeMatchesLazy pins the speculative CELF contract: batched
// concurrent recomputation of stale heap entries never changes what gets
// selected — Set and Value are byte-identical to the purely lazy run (and
// so to Greedy) at any worker count and stride — while OracleCalls may
// only grow, by the speculation margin.
func TestSpeculativeMatchesLazy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		o := randomWC(24, seed)
		lazy := LazyGreedy(o, 24)
		for _, workers := range []int{1, 2, 4, 7} {
			for _, stride := range []int{1, 2, 8} {
				spec := LazyGreedy(o, 24, Parallel(workers), Speculative(stride))
				label := "speculative"
				if !reflect.DeepEqual(spec.Set, lazy.Set) {
					t.Errorf("%s w=%d s=%d: set %v != %v", label, workers, stride, spec.Set, lazy.Set)
				}
				if spec.Value != lazy.Value {
					t.Errorf("%s w=%d s=%d: value %v != %v (not bit-identical)",
						label, workers, stride, spec.Value, lazy.Value)
				}
				if spec.OracleCalls < lazy.OracleCalls {
					t.Errorf("%s w=%d s=%d: %d oracle calls, below the lazy run's %d",
						label, workers, stride, spec.OracleCalls, lazy.OracleCalls)
				}
			}
		}
	}
}

// TestIncrementalMatchesFull pins that an oracle taking the
// IncrementalOracle fast path (cached add-state probes) selects identically
// to the same oracle probed by full evaluations.
func TestIncrementalMatchesFull(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		plain := randomWC(24, seed)
		incr := &incrWC{wcOracle: *plain}
		full := runAll(plain, 24)
		fast := runAll(incr, 24)
		requireIdentical(t, "incremental", full, fast)
		// And the two paths compose with parallel sweeps.
		both := runAll(incr, 24, Parallel(4), Speculative(-1))
		requireIdentical(t, "incremental+parallel", full, both)
	}
}

// TestCachedMatchesUncached pins that memoization is invisible to results
// and call accounting (the counter sits above the cache).
func TestCachedMatchesUncached(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		plain := randomWC(24, seed)
		bare := runAll(plain, 24)

		cache := Cached(plain)
		memo := runAll(cache, 24)
		requireIdentical(t, "cached", bare, memo)
		if cache.Hits() == 0 {
			t.Error("cache never hit across the algorithm suite")
		}

		// Cached over an incremental oracle, under parallel sweeps.
		incr := Cached(&incrWC{wcOracle: *plain})
		all := runAll(incr, 24, Parallel(4), Speculative(-1))
		requireIdentical(t, "cached+incremental+parallel", bare, all)
	}
}

// TestGRASPParallelRace exercises the parallel sweep engine under load for
// the race detector: many workers, incremental probes, shared cache.
func TestGRASPParallelRace(t *testing.T) {
	o := Cached(&incrWC{wcOracle: *randomWC(32, 9)})
	res := GRASP(o, 32, 4, 8, stats.NewRNG(7), Parallel(8))
	if len(res.Set) == 0 {
		t.Fatal("GRASP selected nothing")
	}
}

func TestCachedOracleUnit(t *testing.T) {
	o := randomWC(8, 3)
	c := Cached(o)
	if Cached(c) != c {
		t.Error("Cached should be idempotent")
	}

	v1 := c.Value([]int{3, 1, 2})
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Errorf("after first value: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	// Any permutation of the same set is one canonical key.
	if v2 := c.Value([]int{1, 2, 3}); v2 != v1 {
		t.Errorf("permuted set value %v != %v", v2, v1)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Len() != 1 {
		t.Errorf("after permuted value: hits=%d misses=%d len=%d", c.Hits(), c.Misses(), c.Len())
	}

	// The add-probe path shares the same memo: probing {3,1,2}∪{0} then
	// evaluating {0,1,2,3} hits.
	st := c.BeginAdd([]int{3, 1, 2})
	va := c.ValueAdd(st, 0)
	if want := o.Value([]int{0, 1, 2, 3}); va != want {
		t.Errorf("ValueAdd = %v, want %v", va, want)
	}
	if c.Misses() != 2 {
		t.Errorf("misses = %d, want 2", c.Misses())
	}
	if v := c.Value([]int{0, 1, 2, 3}); v != va {
		t.Errorf("full value %v != memoized add-probe %v", v, va)
	}
	if c.Hits() != 2 {
		t.Errorf("hits = %d, want 2", c.Hits())
	}

	if c.Unwrap() != Oracle(o) {
		t.Error("Unwrap should return the inner oracle")
	}
}
