package selection

import (
	"reflect"
	"runtime"
	"sort"
	"testing"
	"time"

	"freshsource/internal/obs"
)

// TestSweepFanOutFloor pins the adaptive fan-out floor: a sweep with
// fewer than minMovesPerWorker moves per worker never engages the pool —
// no selection.sweep.parallel_batches increment, no helper goroutines —
// and still evaluates every move, so results are identical to the wide
// path by construction.
func TestSweepFanOutFloor(t *testing.T) {
	obs.Enable()
	batches := obs.Counter("selection.sweep.parallel_batches")

	ev := newEvaluator([]Option{Parallel(8)})
	defer ev.close()

	before := batches.Value()
	got := make([]int, 4)
	ev.sweep(4, func(i int) { got[i] = i + 1 })
	if delta := batches.Value() - before; delta != 0 {
		t.Errorf("4-move sweep at Parallel(8) recorded %d parallel batches, want 0 (inline below the floor)", delta)
	}
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("inline sweep outputs %v, want %v", got, want)
	}

	// A sweep at the floor fans out (and the pool, once started, is what
	// the parallel_batches counter observes).
	wide := make([]int, 8*minMovesPerWorker)
	before = batches.Value()
	ev.sweep(len(wide), func(i int) { wide[i] = 1 })
	if delta := batches.Value() - before; delta != 1 {
		t.Errorf("%d-move sweep at Parallel(8) recorded %d parallel batches, want 1", len(wide), delta)
	}
	for i, v := range wide {
		if v != 1 {
			t.Fatalf("pooled sweep skipped index %d", i)
		}
	}

	// And the algorithm-level contract: a 4-candidate instance at
	// Parallel(8) stays inline end to end and selects identically.
	o := randomWC(4, 3)
	seq := Greedy(o, 4)
	before = batches.Value()
	par := Greedy(o, 4, Parallel(8))
	if delta := batches.Value() - before; delta != 0 {
		t.Errorf("4-candidate Greedy at Parallel(8) recorded %d parallel batches, want 0", delta)
	}
	requireSameRun(t, "greedy under the fan-out floor", seq, par)
}

// TestSweepPoolPersists pins that one parallel run reuses a single set of
// pool helpers across all its sweeps (no per-round goroutine spawn) and
// shuts them down when the run finishes: after the run returns, the
// goroutine count settles back to the baseline.
func TestSweepPoolPersists(t *testing.T) {
	base := runtime.NumGoroutine()
	o := &incrWC{wcOracle: *randomWC(256, 11)}
	r := Greedy(o, 256, Parallel(4))
	if len(r.Set) == 0 {
		t.Fatal("greedy selected nothing")
	}
	// The deferred close fires before Greedy returns; helpers exit
	// asynchronously after quit closes, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("goroutines after run: %d, baseline %d — pool helpers leaked", got, base)
	}
}

// TestSweepPoolCloseIdempotent pins close semantics on every pool state.
func TestSweepPoolCloseIdempotent(t *testing.T) {
	var nilPool *sweepPool
	nilPool.close() // no-op on sequential runs

	p := newSweepPool(4)
	p.close() // never started

	p = newSweepPool(4)
	n := 0
	p.run(200, nil, func(i int) { n++ })
	if n != 200 {
		t.Fatalf("pool evaluated %d of 200 moves", n)
	}
	p.close()
	p.close() // idempotent
}

// TestShardHeapPopOrder pins the merge invariant the sharded CELF heap
// relies on: because celfBefore is a strict total order, draining the
// shard heap yields exactly the same sequence regardless of the shard
// count — byte-identical to a single global heap.
func TestShardHeapPopOrder(t *testing.T) {
	const n = 257
	vals := make([]float64, n)
	for x := 0; x < n; x++ {
		// A few deliberate gain ties (x%7) to exercise the idx tiebreak.
		vals[x] = float64(x % 7)
	}
	value := func(x int) (float64, bool) { return vals[x], x%13 != 0 }

	var want []celfEntry
	for _, workers := range []int{1, 2, 4, 8} {
		ev := newEvaluator([]Option{Parallel(workers)})
		sh := buildShardHeap(ev, n, 0, value)
		var got []celfEntry
		for sh.len() > 0 {
			s, _ := sh.top()
			got = append(got, sh.pop(s))
		}
		ev.close()
		if !sort.SliceIsSorted(got, func(i, j int) bool { return celfBefore(got[i], got[j]) }) {
			t.Fatalf("workers=%d: drain sequence not in celfBefore order", workers)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: drain sequence diverges from the single-shard heap", workers)
		}
	}

	// Reinsertion (the speculative path's pop→recompute→push round-trip)
	// preserves the order property: push updated entries back into
	// arbitrary shards and verify the next top is the global best.
	ev := newEvaluator([]Option{Parallel(4)})
	defer ev.close()
	sh := buildShardHeap(ev, n, 0, value)
	s1, _ := sh.top()
	e1 := sh.pop(s1)
	s2, _ := sh.top()
	e2 := sh.pop(s2)
	e1.gain, e1.round = -1, 1 // now worse than everything
	e2.gain, e2.round = 99, 1 // now better than everything
	sh.push(s1, e1)
	sh.push(s2, e2)
	if _, top := sh.top(); top.idx != e2.idx || top.gain != 99 {
		t.Errorf("top after reinsertion = idx %d gain %v, want idx %d gain 99", top.idx, top.gain, e2.idx)
	}
}
