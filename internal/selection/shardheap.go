package selection

import (
	"freshsource/internal/obs"
)

// shardHeap is the CELF priority queue sharded across a run's workers:
// each worker owns one celfHeap shard, and the global maximum is found by
// k-way top selection over the shard heads. Sharding exists for
// construction — the initial singleton sweep writes entries straight into
// per-worker shards and each shard heapifies concurrently, so there is no
// serial O(n) global init and no vals/ok scratch arrays at 15k
// candidates — while the merged view keeps every sequential operation the
// main CELF loop needs.
//
// Determinism: celfBefore is a strict total order (idx breaks every tie),
// so the pop sequence of the merged heap is a property of the entry
// multiset alone — identical for any shard count and any entry placement.
// Which shard a reinserted entry lands in can therefore never affect
// Set/Value/pop order; entries simply return to the shard they were
// popped from to keep sizes balanced.
//
// The head scan is O(shards) with shards ≤ workers (a handful); a
// loser-tree over the heads would make it O(log shards) but the constant
// is already a few compares against probe costs in the microseconds, so
// plain selection wins on simplicity.
type shardHeap struct {
	shards []celfHeap
	size   int
}

// buildShardHeap runs the initial singleton sweep sharded across the
// evaluator's workers: shard s owns the contiguous candidate range
// [s·n/w, (s+1)·n/w), evaluates it, appends its feasible entries and
// heapifies — all shards concurrently when the run has a pool. value
// reports candidate x's oracle value and whether x is feasible; cur is
// the current solution value the gains are measured against.
//
// A canceled context leaves shards partially built; callers must check
// ev.canceled() before using the heap (as after any sweep).
func buildShardHeap(ev evaluator, n int, cur float64, value func(x int) (float64, bool)) *shardHeap {
	w := ev.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	sh := &shardHeap{shards: make([]celfHeap, w)}
	build := func(s int) {
		lo, hi := s*n/w, (s+1)*n/w
		shard := make(celfHeap, 0, hi-lo)
		for x := lo; x < hi; x++ {
			if (x-lo)%cancelStride == 0 && ev.ctx != nil && ev.ctx.Err() != nil {
				return
			}
			if v, ok := value(x); ok {
				shard = append(shard, celfEntry{idx: int32(x), round: 0, gain: v - cur, val: v})
			}
		}
		shard.init()
		sh.shards[s] = shard
	}
	if ev.pool != nil && w > 1 {
		if obs.Enabled() {
			obs.Counter("selection.sweep.parallel_batches").Inc()
			obs.Counter("selection.sweep.parallel_moves").Add(int64(n))
		}
		ev.pool.run(w, ev.ctx, build)
	} else {
		for s := 0; s < w; s++ {
			build(s)
		}
	}
	for _, shard := range sh.shards {
		sh.size += len(shard)
	}
	return sh
}

// len returns the number of entries across all shards.
func (sh *shardHeap) len() int { return sh.size }

// top returns the shard holding the globally best entry under celfBefore
// and a pointer to that entry. The pointer stays valid until the next
// mutation; mutating the entry in place must be followed by fix. top must
// not be called on an empty heap.
func (sh *shardHeap) top() (int, *celfEntry) {
	best := -1
	for s := range sh.shards {
		if len(sh.shards[s]) == 0 {
			continue
		}
		if best < 0 || celfBefore(sh.shards[s][0], sh.shards[best][0]) {
			best = s
		}
	}
	return best, &sh.shards[best][0]
}

// fix restores shard s's heap order after its head was mutated in place.
func (sh *shardHeap) fix(s int) { sh.shards[s].siftDown(0) }

// pop removes and returns shard s's head.
func (sh *shardHeap) pop(s int) celfEntry {
	sh.size--
	return sh.shards[s].pop()
}

// push inserts e into shard s.
func (sh *shardHeap) push(s int, e celfEntry) {
	sh.size++
	sh.shards[s].push(e)
}
