package selection

import (
	"context"
	"sync"
	"sync/atomic"
)

// sweepPool is the persistent worker pool behind one algorithm run's
// parallel sweeps. Before the pool, every parallel sweep spawned (and
// joined) its own goroutines, which taxed each round with scheduler
// churn — enough to make small-round parallel runs lose to sequential
// ones (the Greedy/parallel+incr inversion in BENCH_multicore.json). The
// pool starts its helpers lazily on the first sweep large enough to fan
// out, reuses them for every subsequent sweep of the run, and is shut
// down by evaluator.close when the run finishes or is canceled.
//
// Dispatch model: a sweep publishes one sweepJob and enqueues it once per
// helper; helpers and the calling goroutine all pull move indices off the
// job's shared atomic cursor (dynamic index dealing, so expensive moves
// don't stall a fixed partition). The caller participates in the loop
// itself, so a pool of w workers runs w-way even though only w−1
// goroutines exist.
type sweepPool struct {
	// workers is the total fan-out including the calling goroutine.
	workers int
	work    chan *sweepJob
	quit    chan struct{}
	started bool
}

// sweepJob is one fanned sweep: eval(i) for every i in [0, m) dealt off
// the cursor. A canceled ctx stops index dealing early; indices already
// dealt still complete.
type sweepJob struct {
	m    int
	next atomic.Int64
	eval func(i int)
	ctx  context.Context
	wg   sync.WaitGroup
}

// run deals indices until the cursor passes m or ctx fires.
func (j *sweepJob) run() {
	for {
		if j.ctx != nil && j.ctx.Err() != nil {
			return
		}
		i := int(j.next.Add(1)) - 1
		if i >= j.m {
			return
		}
		j.eval(i)
	}
}

func newSweepPool(workers int) *sweepPool {
	return &sweepPool{workers: workers}
}

// start spawns the helper goroutines once; subsequent calls are no-ops.
// Helpers block on the work channel between sweeps and exit when close
// fires quit.
func (p *sweepPool) start() {
	if p.started {
		return
	}
	p.started = true
	p.work = make(chan *sweepJob, p.workers-1)
	p.quit = make(chan struct{})
	for k := 0; k < p.workers-1; k++ {
		go func() {
			for {
				select {
				case <-p.quit:
					return
				case j := <-p.work:
					j.run()
					j.wg.Done()
				}
			}
		}()
	}
}

// run fans eval across the pool, blocking until every index in [0, m) has
// been evaluated (or ctx fired mid-sweep, leaving later indices
// unevaluated). Only the owning goroutine may call run; sweeps never
// overlap within a run.
func (p *sweepPool) run(m int, ctx context.Context, eval func(i int)) {
	p.start()
	job := &sweepJob{m: m, eval: eval, ctx: ctx}
	helpers := p.workers - 1
	if helpers > m-1 {
		helpers = m - 1
	}
	job.wg.Add(helpers)
	for k := 0; k < helpers; k++ {
		p.work <- job
	}
	job.run()
	job.wg.Wait()
}

// close stops the helpers. Safe to call on a never-started pool and
// idempotent; the pool cannot be reused afterwards.
func (p *sweepPool) close() {
	if p == nil || !p.started {
		return
	}
	p.started = false
	close(p.quit)
}
