// Package freshsource_test holds the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each benchmark regenerates its
// experiment on the scaled-down configuration and prints the resulting
// rows once, so `go test -bench=. -benchmem` both times the pipeline and
// reproduces the paper's outputs in miniature. Full-size regeneration is
// `go run ./cmd/experiments -exp all`.
package freshsource_test

import (
	"fmt"
	"sync"
	"testing"

	"freshsource/internal/experiments"
)

// benchCfg is the scaled-down configuration: small enough that every
// experiment fits a default benchtime, large enough to keep the paper's
// qualitative shapes.
func benchCfg() experiments.Config {
	cfg := experiments.Quick()
	cfg.BL.Locations = 8
	cfg.BL.Categories = 5
	cfg.BL.NumSources = 12
	cfg.BL.Horizon = 200
	cfg.BL.T0 = 110
	cfg.BL.Scale = 0.3
	cfg.GDELT.Locations = 10
	cfg.GDELT.EventTypes = 6
	cfg.GDELT.NumSources = 40
	cfg.GDELT.Scale = 0.4
	cfg.ScalabilityMultipliers = []int{0, 1, 2, 5}
	cfg.GraspConfigs = [][2]int{{1, 1}, {2, 10}}
	return cfg
}

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
	printed  sync.Map
)

func env() *experiments.Env {
	envOnce.Do(func() { benchEnv = experiments.NewEnv(benchCfg()) })
	return benchEnv
}

// runExperiment benches one experiment id and prints its tables once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e := env()
	// Warm the dataset caches outside the timed region.
	if _, err := e.BL(); err != nil {
		b.Fatal(err)
	}
	if _, err := e.GDELT(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = experiments.Run(id, e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, dup := printed.LoadOrStore(id, true); !dup {
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
}

// Figure 1 — the motivating observations.

func BenchmarkFig1aFreshnessVsFrequency(b *testing.B)   { runExperiment(b, "fig1a") }
func BenchmarkFig1bCoverageTimelinesBL(b *testing.B)    { runExperiment(b, "fig1b") }
func BenchmarkFig1cHalfFrequencyBL(b *testing.B)        { runExperiment(b, "fig1c") }
func BenchmarkFig1dGdeltDelays(b *testing.B)            { runExperiment(b, "fig1d") }
func BenchmarkFig1eCoverageTimelinesGdelt(b *testing.B) { runExperiment(b, "fig1e") }
func BenchmarkFig1fHalfFrequencyGdelt(b *testing.B)     { runExperiment(b, "fig1f") }

// Figures 4–8 — quality metrics and model fits.

func BenchmarkFig4IntegrationOrder(b *testing.B) { runExperiment(b, "fig4") }
func BenchmarkFig5aPoissonFitBL(b *testing.B)    { runExperiment(b, "fig5a") }
func BenchmarkFig5bLifespanFitBL(b *testing.B)   { runExperiment(b, "fig5b") }
func BenchmarkFig6PoissonFitGdelt(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig7KaplanMeier(b *testing.B)      { runExperiment(b, "fig7") }
func BenchmarkFig8SourceTypes(b *testing.B)      { runExperiment(b, "fig8") }

// Figures 9–11 — prediction accuracy.

func BenchmarkFig9WorldPredictionBL(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10aWorldPredictionGdelt(b *testing.B)     { runExperiment(b, "fig10a") }
func BenchmarkFig10bSourcePredictionGdelt(b *testing.B)    { runExperiment(b, "fig10b") }
func BenchmarkFig11SourceQualityPredictionBL(b *testing.B) { runExperiment(b, "fig11") }

// Figure 12 and Tables 1–5 — source selection with fixed frequencies.

func BenchmarkFig12SelectedSourceTypes(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkTable1SelectionQualityBL(b *testing.B) { runExperiment(b, "tab1-2") }
func BenchmarkTable2RuntimesBL(b *testing.B)         { runExperiment(b, "tab1-2") }
func BenchmarkTable3Gdelt(b *testing.B)              { runExperiment(b, "tab3") }
func BenchmarkTable4SelectedBL(b *testing.B)         { runExperiment(b, "tab4") }
func BenchmarkTable5SelectedGdelt(b *testing.B)      { runExperiment(b, "tab5") }

// Tables 6–7 — varying update frequencies.

func BenchmarkTable6VariableFrequencyBL(b *testing.B) { runExperiment(b, "tab6-7") }
func BenchmarkTable7FrequencyDivisors(b *testing.B)   { runExperiment(b, "tab6-7") }

// Figure 13 — scalability.

func BenchmarkFig13aScalabilitySources(b *testing.B) { runExperiment(b, "fig13a") }
func BenchmarkFig13bScalabilityDomain(b *testing.B)  { runExperiment(b, "fig13b") }

// Beyond the paper — ablation of the implementation's design choices
// (τ-dependent exponents, Eq. 8 schedule alignment, ODE world size).

func BenchmarkAblationEstimatorVariants(b *testing.B) { runExperiment(b, "ablation") }
func BenchmarkBacktestWalkForward(b *testing.B)       { runExperiment(b, "backtest") }
