// Quickstart: the smallest end-to-end use of the library.
//
// It generates a synthetic business-listings world with a handful of
// dynamic sources, trains the statistical change models and source profiles
// on the first half of the timeline, and asks MaxSub for the set of sources
// that maximizes coverage-gain minus acquisition cost over ten future time
// points.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/timeline"
)

func main() {
	// 1. A small synthetic dataset: 10 sources over 8 locations.
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 240
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d entities, %d sources, training window [0,%d)\n",
		d.World.NumEntities(), len(d.Sources), d.T0)

	// 2. Train: fit Poisson/exponential world models and Kaplan–Meier
	//    source-effectiveness profiles on the historical window.
	tr, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Define the problem: maximize linear coverage gain minus cost over
	//    ten future time points.
	var future []timeline.Tick
	for t := d.T0 + 12; t < d.Horizon(); t += 12 {
		future = append(future, t)
	}
	prob, err := core.NewProblem(tr, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Solve with the submodular local search (Algorithm 1 of the paper).
	sel, err := prob.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nMaxSub selected %d of %d sources in %s:\n", len(sel.Set), tr.NumCandidates(), sel.Duration)
	for _, name := range sel.Names {
		fmt.Println("  -", name)
	}
	fmt.Printf("\nestimated profit %.4f (gain %.4f), avg future coverage %.4f\n",
		sel.Profit, sel.Gain, sel.AvgCoverage)
}
