// Newsmonitor: the paper's second motivating scenario (Section 1) —
// an analyst monitoring societal events who must choose which news feeds to
// ingest for a specific region.
//
// The example builds a GDELT-like corpus (hundreds of daily-updating
// sources with heterogeneous report delays), inspects the timeliness of the
// biggest feeds, and selects the profit-optimal subset for covering events
// in the largest location ("US"), comparing Greedy against MaxSub.
//
// Run with: go run ./examples/newsmonitor
package main

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/metrics"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func main() {
	cfg := dataset.DefaultGDELTConfig()
	cfg.NumSources = 120
	cfg.Scale = 0.6
	d, err := dataset.GenerateGDELT(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("news corpus: %d events from %d sources over %d days\n\n",
		d.World.NumEntities(), len(d.Sources), d.Horizon())

	// How timely are the biggest feeds? (the Figure 1d analysis)
	fmt.Println("timeliness of the 8 largest feeds (all update daily):")
	for _, i := range d.LargestSources(8) {
		st := metrics.InsertionDelayStats(d.World, d.Sources[i])
		fmt.Printf("  %-12s avg delay %.2f days, %4.1f%% of events delayed\n",
			d.Sources[i].Name(), st.AvgDelay, 100*st.FractionDelayed)
	}

	// Select sources for events in the largest location over the 7
	// evaluation days.
	var usPoints []world.DomainPoint
	for _, p := range d.World.Points() {
		if p.Location == 0 {
			usPoints = append(usPoints, p)
		}
	}
	var future []timeline.Tick
	for t := d.T0 + 1; t < d.Horizon(); t++ {
		future = append(future, t)
	}
	tr, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{
		Points: usPoints,
		MaxT:   future[len(future)-1],
	})
	if err != nil {
		log.Fatal(err)
	}
	prob, err := core.NewProblem(tr, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nselecting feeds for US event coverage:")
	for _, alg := range []core.Algorithm{core.Greedy, core.MaxSub} {
		sel, err := prob.Solve(alg, core.SolveOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s %3d feeds, profit %.4f, est. avg coverage %.4f, %s\n",
			alg, len(sel.Set), sel.Profit, sel.AvgCoverage, sel.Duration)
	}
}
