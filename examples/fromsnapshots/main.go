// Fromsnapshots: the realistic deployment pipeline. A real integrator never
// sees the true world — it only has the sources' snapshot streams. This
// example runs the full stack the paper describes in Figure 3:
//
//  1. sources export records with source-specific formatting quirks;
//  2. history integration (Section 4.1) canonicalises, exact-matches and
//     fuses them into a reconstructed world evolution;
//  3. the statistical models and source profiles are trained on the
//     *reconstruction* — not on ground truth;
//  4. time-aware source selection runs on top;
//  5. only for validation do we compare against the simulator's gold
//     standard, playing the role of the paper's verified subset.
//
// Run with: go run ./examples/fromsnapshots
package main

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/histint"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

func main() {
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 8
	cfg.Categories = 5
	cfg.NumSources = 10
	cfg.Horizon = 220
	cfg.T0 = 120
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1–2. Integrate the sources' record streams into a world evolution.
	ren := histint.NewRenderer(d.World)
	res := histint.Integrate(ren, d.Sources)
	v := histint.Validate(ren, d.World, d.Sources, res)
	fmt.Printf("history integration: %d clusters from %d sources (%d matched to gold standard)\n",
		res.NumClusters(), len(d.Sources), v.Matched)
	fmt.Printf("  mean appearance lag %.2f ticks, mean deletion lag %.2f ticks\n", v.AppearLagMean, v.DisappearLagMean)

	// 3. Re-key everything into the reconstructed world and train on it.
	rw, idOf, err := res.ToWorld(d.Horizon())
	if err != nil {
		log.Fatal(err)
	}
	var rekeyed []*source.Source
	for _, s := range d.Sources {
		rs, err := histint.RekeySource(ren, res, idOf, s)
		if err != nil {
			log.Fatal(err)
		}
		rekeyed = append(rekeyed, rs)
	}
	var future []timeline.Tick
	for t := d.T0 + 10; t < d.Horizon(); t += 10 {
		future = append(future, t)
	}
	tr, err := core.Train(rw, rekeyed, d.T0, core.TrainOptions{MaxT: future[len(future)-1]})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Select.
	prob, err := core.NewProblem(tr, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := prob.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected on reconstructed history: %v (est. avg coverage %.4f)\n", sel.Names, sel.AvgCoverage)

	// 5. Validate the selection against the gold standard.
	var picked []*source.Source
	for _, i := range sel.Set {
		picked = append(picked, d.Sources[tr.CandidateSource(i)])
	}
	var truth float64
	for _, tk := range future {
		truth += metrics.QualityAt(d.World, picked, tk, nil).Coverage
	}
	fmt.Printf("gold-standard avg coverage of that selection: %.4f\n", truth/float64(len(future)))
	fmt.Println("\n(the reconstruction only contains entities some source saw, so coverage")
	fmt.Println(" measured against it is optimistic — the gold standard reveals the gap)")
}
