// Listings: the paper's motivating aggregator scenario (Section 1) —
// a business-listings aggregator deciding which feeds to buy and how often
// to pull each one.
//
// The example compares three policies on the same synthetic BL corpus:
//
//  1. "buy everything" — integrate all sources at full frequency;
//  2. basic time-aware selection (Definition 3) — pick the profit-optimal
//     subset at full frequency;
//  3. varying-frequency selection (Definition 4) — additionally choose a
//     cheaper acquisition frequency per source, with seven versions per
//     source as in Table 6 of the paper.
//
// It then validates the winning selection against the simulator's ground
// truth, which a real aggregator obviously would not have.
//
// Run with: go run ./examples/listings
package main

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/metrics"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
)

func main() {
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 12
	cfg.Categories = 8
	cfg.NumSources = 18
	cfg.Horizon = 300
	cfg.T0 = 160
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var future []timeline.Tick
	for t := d.T0 + 14; t < d.Horizon(); t += 14 {
		future = append(future, t)
	}
	fmt.Printf("aggregator with %d candidate feeds, planning %d future refresh points\n\n",
		len(d.Sources), len(future))

	// Policy 1: everything at full frequency.
	trAll, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{MaxT: future[len(future)-1]})
	if err != nil {
		log.Fatal(err)
	}
	probAll, err := core.NewProblem(trAll, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	all := make([]int, trAll.NumCandidates())
	for i := range all {
		all[i] = i
	}
	fmt.Printf("policy 1 (buy everything):      profit %.4f, cost share %.4f\n",
		probAll.Profit().Value(all), trAll.Cost.SetCost(all)/trAll.Cost.Total())

	// Policy 2: basic time-aware selection.
	basic, err := probAll.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy 2 (select, full freq):   profit %.4f with %d feeds, avg coverage %.4f\n",
		basic.Profit, len(basic.Set), basic.AvgCoverage)

	// Policy 3: varying-frequency selection, seven versions per source.
	trFreq, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{
		MaxT:         future[len(future)-1],
		FreqDivisors: []int{2, 3, 4, 5, 6, 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	probFreq, err := core.NewProblem(trFreq, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	varying, err := probFreq.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy 3 (select + frequency):  profit %.4f with %d feeds, avg coverage %.4f\n\n",
		varying.Profit, len(varying.Set), varying.AvgCoverage)

	fmt.Println("policy 3 acquisition plan:")
	for i := range varying.Set {
		every := ""
		if varying.Divisors[i] > 1 {
			every = fmt.Sprintf(" (pull every %d updates)", varying.Divisors[i])
		}
		fmt.Printf("  - %s%s\n", varying.Names[i], every)
	}

	// Ground-truth check of the winning plan (divisor-aware).
	var picked []*source.Source
	for k, i := range varying.Set {
		s := d.Sources[trFreq.CandidateSource(i)]
		if div := varying.Divisors[k]; div > 1 {
			ds, err := s.Downsample(div)
			if err != nil {
				log.Fatal(err)
			}
			s = ds
		}
		picked = append(picked, s)
	}
	var covSum float64
	for _, t := range future {
		covSum += metrics.QualityAt(d.World, picked, t, nil).Coverage
	}
	fmt.Printf("\nground-truth avg coverage of policy 3: %.4f (estimated %.4f)\n",
		covSum/float64(len(future)), varying.AvgCoverage)
}
