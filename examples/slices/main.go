// Slices: the micro-source variant of the paper (Definition 5, Figure 2) —
// a user who only cares about a few locations can acquire *slices* of big
// sources instead of whole feeds, cutting cost while keeping coverage.
//
// The example decomposes each full source into per-location micro-sources,
// runs slice time-aware selection for a two-location query, and compares
// the profit against whole-source selection for the same query.
//
// Run with: go run ./examples/slices
package main

import (
	"fmt"
	"log"

	"freshsource/internal/core"
	"freshsource/internal/dataset"
	"freshsource/internal/gain"
	"freshsource/internal/source"
	"freshsource/internal/timeline"
	"freshsource/internal/world"
)

func main() {
	cfg := dataset.DefaultBLConfig()
	cfg.Locations = 10
	cfg.Categories = 6
	cfg.NumSources = 12
	cfg.Horizon = 240
	cfg.T0 = 130
	cfg.Scale = 0.4
	d, err := dataset.GenerateBL(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The user's query: two locations only.
	queryLocs := map[int]bool{2: true, 5: true}
	var query []world.DomainPoint
	for _, p := range d.World.Points() {
		if queryLocs[p.Location] {
			query = append(query, p)
		}
	}
	var future []timeline.Tick
	for t := d.T0 + 10; t < d.Horizon(); t += 10 {
		future = append(future, t)
	}
	fmt.Printf("query: %d domain points across locations 2 and 5; %d future ticks\n\n", len(query), len(future))

	// Whole-source selection for the restricted query.
	trWhole, err := core.Train(d.World, d.Sources, d.T0, core.TrainOptions{Points: query, MaxT: future[len(future)-1]})
	if err != nil {
		log.Fatal(err)
	}
	probWhole, err := core.NewProblem(trWhole, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	whole, err := probWhole.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole sources: profit %.4f, %d feeds, cost share %.4f\n",
		whole.Profit, len(whole.Set), trWhole.Cost.SetCost(whole.Set)/trWhole.Cost.Total())

	// Slice selection: one micro-source per (source, query location).
	var micro []*source.Source
	for _, s := range d.Sources {
		for loc := range queryLocs {
			var pts []world.DomainPoint
			for _, p := range s.Spec().Points {
				if p.Location == loc {
					pts = append(pts, p)
				}
			}
			if len(pts) == 0 {
				continue
			}
			micro = append(micro, s.Restrict(d.World, pts, fmt.Sprintf("%s@L%d", s.Name(), loc)))
		}
	}
	fmt.Printf("\ndecomposed into %d micro-sources (slices)\n", len(micro))

	trSlice, err := core.Train(d.World, micro, d.T0, core.TrainOptions{Points: query, MaxT: future[len(future)-1]})
	if err != nil {
		log.Fatal(err)
	}
	probSlice, err := core.NewProblem(trSlice, future, gain.Linear{Metric: gain.Coverage}, core.ProblemOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sliced, err := probSlice.Solve(core.MaxSub, core.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice selection: profit %.4f, %d slices, cost share %.4f\n\n",
		sliced.Profit, len(sliced.Set), trSlice.Cost.SetCost(sliced.Set)/trSlice.Cost.Total())

	fmt.Println("acquired slices:")
	for _, name := range sliced.Names {
		fmt.Println("  -", name)
	}
	if sliced.Profit >= whole.Profit {
		fmt.Println("\nslices matched or beat whole-source acquisition on profit, as in Figure 2's intuition")
	} else {
		fmt.Println("\nwhole sources won on this instance; slices still cut cost per unit coverage")
	}
}
